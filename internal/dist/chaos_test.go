package dist

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/testbed"
	"repro/internal/tracestore"
)

// The chaos suite runs REAL worker processes (re-executions of this
// test binary) against an in-test coordinator, SIGKILLs one on every
// generation boundary, and injects network faults (drops, duplicates,
// delays, stalls) into the survivors' RPCs. The search must still
// finish with a result and checkpoint bit-identical to the serial
// golden run. Set AUDIT_CHAOS=1 for the heavier variant (more workers,
// longer search).

// TestDistWorkerProcess is not a test: it is the worker process the
// chaos suite spawns. It runs a worker against the coordinator named
// by the environment until it is killed.
func TestDistWorkerProcess(t *testing.T) {
	if os.Getenv("AUDIT_DIST_WORKER") != "1" {
		t.Skip("helper process for the chaos suite")
	}
	url := os.Getenv("AUDIT_DIST_URL")
	id := os.Getenv("AUDIT_DIST_ID")
	var client *http.Client
	if s := os.Getenv("AUDIT_DIST_NETSEED"); s != "" {
		seed, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		nf, err := faults.NewNet(faults.LabNet(seed), nil)
		if err != nil {
			t.Fatal(err)
		}
		client = &http.Client{Transport: nf}
	}
	cp, err := testbed.Bulldozer().Compile()
	if err != nil {
		t.Fatal(err)
	}
	if os.Getenv("AUDIT_DIST_TRACE") == "1" {
		// The trace tier rides the same faulty transport as the control
		// RPCs: fetches and publishes get dropped, stalled and duplicated
		// too, and a SIGKILL can land while this process owns a capture
		// claim or is mid-publish.
		tc, err := NewTraceTierClient(TraceTierConfig{
			BaseURL: url, WorkerID: id,
			HTTPClient: client, LeaseTTL: 200 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		cp.SetTraceTier(tc)
	}
	w, err := NewWorker(WorkerConfig{
		ID: id, BaseURL: url, Runner: cp,
		Platform:   testbed.PlatformDigest(testbed.Bulldozer()),
		Poll:       5 * time.Millisecond,
		HTTPClient: client,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Guard against orphaning: die on our own after a while even if the
	// parent never kills us.
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	w.Run(ctx)
}

// procPool manages real worker subprocesses.
type procPool struct {
	t       *testing.T
	url     string
	netSeed int64
	mu      sync.Mutex
	procs   []*exec.Cmd
	nextID  int
}

func (p *procPool) spawn() {
	p.mu.Lock()
	id := fmt.Sprintf("proc%d", p.nextID)
	p.nextID++
	p.mu.Unlock()
	cmd := exec.Command(os.Args[0], "-test.run=^TestDistWorkerProcess$")
	cmd.Env = append(os.Environ(),
		"AUDIT_DIST_WORKER=1",
		"AUDIT_DIST_URL="+p.url,
		"AUDIT_DIST_ID="+id,
		"AUDIT_DIST_TRACE=1",
		fmt.Sprintf("AUDIT_DIST_NETSEED=%d", p.netSeed+int64(p.nextID)),
	)
	cmd.Stdout = nil
	cmd.Stderr = nil
	if err := cmd.Start(); err != nil {
		p.t.Errorf("spawning worker process: %v", err)
		return
	}
	p.mu.Lock()
	p.procs = append(p.procs, cmd)
	p.mu.Unlock()
}

// sigkillOne SIGKILLs the oldest live worker process and spawns a
// replacement.
func (p *procPool) sigkillOne() {
	p.mu.Lock()
	var victim *exec.Cmd
	if len(p.procs) > 0 {
		victim = p.procs[0]
		p.procs = p.procs[1:]
	}
	p.mu.Unlock()
	if victim == nil {
		return
	}
	victim.Process.Kill() // SIGKILL: no goodbye, no cleanup
	go victim.Wait()      // reap
	p.t.Logf("chaos: SIGKILLed worker pid %d", victim.Process.Pid)
	p.spawn()
}

func (p *procPool) close() {
	p.mu.Lock()
	procs := p.procs
	p.procs = nil
	p.mu.Unlock()
	for _, cmd := range procs {
		cmd.Process.Kill()
		cmd.Wait()
	}
}

// TestChaosSIGKILLEveryGeneration: real worker processes with lossy
// RPC transports, one SIGKILLed at every generation boundary — the
// search still produces the golden result and checkpoint.
func TestChaosSIGKILLEveryGeneration(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real worker processes")
	}
	nWorkers := 2
	if os.Getenv("AUDIT_CHAOS") != "" {
		nWorkers = 4
	}

	dir := t.TempDir()
	golden, goldenCkpt := runSerial(t, dir)

	ckpt := dir + "/chaos.ckpt"
	opt := searchOptions(ckpt)
	var co *Coordinator
	var pool *procPool
	// The workers share traces through the coordinator's store, with the
	// data plane subject to the same network faults and SIGKILLs as the
	// control plane — including kills that land while a worker owns a
	// capture claim or is mid-publish.
	traceStore, err := tracestore.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	opt.WrapRunner = func(r testbed.Runner) testbed.Runner {
		var err error
		co, err = NewCoordinator(Config{
			Local:      r.(LocalRunner),
			Platform:   testbed.PlatformDigest(testbed.Bulldozer()),
			UnitSize:   2,
			LeaseTTL:   200 * time.Millisecond,
			TraceStore: traceStore,
			Logf:       t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(co.Handler())
		t.Cleanup(srv.Close)
		pool = &procPool{t: t, url: srv.URL, netSeed: 1000}
		for i := 0; i < nWorkers; i++ {
			pool.spawn()
		}
		// Give the processes a chance to come up; if they are slow the
		// coordinator degrades to local for the first units, which is
		// exactly the graceful behaviour under test — results are
		// identical either way.
		deadline := time.Now().Add(15 * time.Second)
		for co.LiveWorkers() < nWorkers && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		t.Logf("chaos: %d worker processes live", co.LiveWorkers())
		return co
	}

	// SIGKILL one worker every time a generation checkpoint lands.
	stopWatch := make(chan struct{})
	defer close(stopWatch)
	go func() {
		lastGen := -1
		for {
			select {
			case <-stopWatch:
				return
			case <-time.After(3 * time.Millisecond):
			}
			if gen, ok := checkpointGen(ckpt); ok && gen > lastGen {
				lastGen = gen
				if pool != nil {
					pool.sigkillOne()
				}
			}
		}
	}()

	sm, err := core.Generate(context.Background(), opt)
	if pool != nil {
		defer pool.close()
	}
	if err != nil {
		t.Fatal(err)
	}
	final, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalent(t, "chaos", golden, sm, goldenCkpt, final)
	t.Logf("chaos: coordinator stats %+v", co.Stats())
}
