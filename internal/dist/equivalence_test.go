package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ga"
	"repro/internal/testbed"
)

// The distributed search must be bit-identical to the single-node one:
// same ga.Result (DeepEqual), same winning program, same checkpoint
// bytes — for any worker count and any kill schedule. These tests run
// the full AUDIT search both ways and compare.

// searchOptions returns a small but real search: fixed loop length
// (skips the resonance sweep), memoized hierarchical GA, batched
// evaluation.
func searchOptions(ckpt string) core.Options {
	return core.Options{
		Platform:       testbed.Bulldozer(),
		Threads:        2,
		LoopCycles:     32,
		MeasureCycles:  2200,
		WarmupCycles:   700,
		Seed:           77,
		Name:           "dist-equiv",
		CheckpointPath: ckpt,
		GA: ga.Config{
			PopSize:        8,
			Elites:         2,
			TournamentK:    3,
			MutationProb:   0.6,
			MaxGenerations: 3,
			Parallel:       2,
			Seed:           78,
		},
	}
}

// runSerial is the golden single-node search.
func runSerial(t *testing.T, dir string) (*core.Stressmark, []byte) {
	t.Helper()
	ckpt := filepath.Join(dir, "serial.ckpt")
	sm, err := core.Generate(context.Background(), searchOptions(ckpt))
	if err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	return sm, blob
}

// workerPool runs nWorkers in-process workers against url, each on its
// own compiled platform. When killEvery > 0, a reaper cancels one
// worker (simulated SIGKILL — the process just stops talking) on that
// period and starts a replacement under a fresh ID.
type workerPool struct {
	t        *testing.T
	url      string
	digest   string
	mu       sync.Mutex
	cancels  map[string]context.CancelFunc
	wg       sync.WaitGroup
	stop     chan struct{}
	nextID   int
	stopOnce sync.Once
}

func newWorkerPool(t *testing.T, co *Coordinator, url string, nWorkers int, killEvery time.Duration) *workerPool {
	t.Helper()
	p := &workerPool{
		t: t, url: url,
		digest:  testbed.PlatformDigest(testbed.Bulldozer()),
		cancels: make(map[string]context.CancelFunc),
		stop:    make(chan struct{}),
	}
	for i := 0; i < nWorkers; i++ {
		p.spawn()
	}
	waitWorkers(t, co, nWorkers)
	if killEvery > 0 {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			rng := rand.New(rand.NewSource(1))
			tick := time.NewTicker(killEvery)
			defer tick.Stop()
			for {
				select {
				case <-p.stop:
					return
				case <-tick.C:
				}
				p.mu.Lock()
				ids := make([]string, 0, len(p.cancels))
				for id := range p.cancels {
					ids = append(ids, id)
				}
				if len(ids) == 0 {
					p.mu.Unlock()
					continue
				}
				victim := ids[rng.Intn(len(ids))]
				p.cancels[victim]()
				delete(p.cancels, victim)
				p.mu.Unlock()
				p.t.Logf("pool: killed %s", victim)
				p.spawn()
			}
		}()
	}
	return p
}

func (p *workerPool) spawn() {
	cp, err := testbed.Bulldozer().Compile()
	if err != nil {
		p.t.Error(err)
		return
	}
	p.mu.Lock()
	id := fmt.Sprintf("pw%d", p.nextID)
	p.nextID++
	w, err := NewWorker(WorkerConfig{
		ID: id, BaseURL: p.url, Runner: cp, Platform: p.digest,
		Poll: 5 * time.Millisecond,
	})
	if err != nil {
		p.mu.Unlock()
		p.t.Error(err)
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	p.cancels[id] = cancel
	p.mu.Unlock()
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		w.Run(ctx)
	}()
}

func (p *workerPool) close() {
	p.stopOnce.Do(func() { close(p.stop) })
	p.mu.Lock()
	for _, cancel := range p.cancels {
		cancel()
	}
	p.mu.Unlock()
	p.wg.Wait()
}

// runDistributed runs the same search through a coordinator with
// nWorkers workers, optionally killing one per killEvery.
func runDistributed(t *testing.T, dir string, nWorkers int, killEvery time.Duration) (*core.Stressmark, []byte, Stats) {
	t.Helper()
	ckpt := filepath.Join(dir, fmt.Sprintf("dist-%d-%v.ckpt", nWorkers, killEvery))
	opt := searchOptions(ckpt)
	var co *Coordinator
	var pool *workerPool
	opt.WrapRunner = func(r testbed.Runner) testbed.Runner {
		local, ok := r.(LocalRunner)
		if !ok {
			t.Fatalf("runner %T is not a LocalRunner", r)
		}
		var err error
		co, err = NewCoordinator(Config{
			Local:    local,
			Platform: testbed.PlatformDigest(testbed.Bulldozer()),
			UnitSize: 2,
			LeaseTTL: 150 * time.Millisecond,
			Logf:     t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(co.Handler())
		t.Cleanup(srv.Close)
		pool = newWorkerPool(t, co, srv.URL, nWorkers, killEvery)
		return co
	}
	sm, err := core.Generate(context.Background(), opt)
	pool.close()
	if err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	return sm, blob, co.Stats()
}

// checkEquivalent compares a distributed search outcome to the golden
// serial one: the GA trajectory, winner and checkpoint must all match
// exactly.
func checkEquivalent(t *testing.T, label string, golden, got *core.Stressmark, goldenCkpt, gotCkpt []byte) {
	t.Helper()
	if !reflect.DeepEqual(got.Search, golden.Search) {
		t.Errorf("%s: ga.Result differs from serial run\n got: %+v\nwant: %+v", label, got.Search, golden.Search)
	}
	if got.DroopV != golden.DroopV {
		t.Errorf("%s: DroopV %v != %v", label, got.DroopV, golden.DroopV)
	}
	if !reflect.DeepEqual(got.Program, golden.Program) {
		t.Errorf("%s: winning program differs", label)
	}
	if !reflect.DeepEqual(got.Genome, golden.Genome) {
		t.Errorf("%s: winning genome differs", label)
	}
	if string(gotCkpt) != string(goldenCkpt) {
		t.Errorf("%s: final checkpoint bytes differ (%d vs %d bytes)", label, len(gotCkpt), len(goldenCkpt))
	}
}

// TestDistributedSearchEquivalence: worker counts {1,2,4}, each with
// and without a kill schedule, all bit-identical to the serial search.
func TestDistributedSearchEquivalence(t *testing.T) {
	dir := t.TempDir()
	golden, goldenCkpt := runSerial(t, dir)

	counts := []int{1, 2, 4}
	if testing.Short() {
		counts = []int{2}
	}
	for _, n := range counts {
		for _, kill := range []time.Duration{0, 45 * time.Millisecond} {
			label := fmt.Sprintf("workers=%d kill=%v", n, kill)
			t.Run(label, func(t *testing.T) {
				sm, ckpt, st := runDistributed(t, t.TempDir(), n, kill)
				checkEquivalent(t, label, golden, sm, goldenCkpt, ckpt)
				t.Logf("%s: stats %+v", label, st)
			})
		}
	}
}

// TestCoordinatorCrashResume kills the whole coordinator process
// (simulated: context cancelled mid-search) after at least one
// generation checkpoint, then resumes from the checkpoint with a brand
// new coordinator and worker pool. The stitched-together search must be
// bit-identical to the uninterrupted serial one.
func TestCoordinatorCrashResume(t *testing.T) {
	dir := t.TempDir()
	golden, goldenCkpt := runSerial(t, dir)

	ckpt := filepath.Join(dir, "crash.ckpt")
	opt := searchOptions(ckpt)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var pool *workerPool
	var co *Coordinator
	opt.WrapRunner = func(r testbed.Runner) testbed.Runner {
		var err error
		co, err = NewCoordinator(Config{
			Local: r.(LocalRunner), UnitSize: 2,
			LeaseTTL: 150 * time.Millisecond, Logf: t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(co.Handler())
		t.Cleanup(srv.Close)
		pool = newWorkerPool(t, co, srv.URL, 2, 0)
		return co
	}
	// Crash the coordinator as soon as generation 1's checkpoint lands
	// — the search is then mid-generation 2 (or about to be).
	go func() {
		for {
			if gen, ok := checkpointGen(ckpt); ok && gen >= 1 {
				cancel()
				return
			}
			select {
			case <-ctx.Done():
				return
			case <-time.After(2 * time.Millisecond):
			}
		}
	}()
	if _, err := core.Generate(ctx, opt); err == nil {
		t.Fatal("search finished before the simulated crash; raise MaxGenerations")
	}
	pool.close()

	// Resume with a fresh coordinator, fresh workers, fresh platform.
	blob, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	resumeGen, _ := checkpointGen(ckpt)
	t.Logf("crashed with checkpoint at generation %d, resuming", resumeGen)
	loaded, err := core.LoadSearchCheckpoint(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	opt2 := searchOptions(ckpt)
	opt2.Resume = loaded
	var pool2 *workerPool
	opt2.WrapRunner = func(r testbed.Runner) testbed.Runner {
		co2, err := NewCoordinator(Config{
			Local: r.(LocalRunner), UnitSize: 2,
			LeaseTTL: 150 * time.Millisecond, Logf: t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(co2.Handler())
		t.Cleanup(srv.Close)
		pool2 = newWorkerPool(t, co2, srv.URL, 2, 0)
		return co2
	}
	sm, err := core.Generate(context.Background(), opt2)
	pool2.close()
	if err != nil {
		t.Fatal(err)
	}
	final, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalent(t, "crash-resume", golden, sm, goldenCkpt, final)
}

// checkpointGen reads the generation counter out of a checkpoint file.
func checkpointGen(path string) (int, bool) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return 0, false
	}
	var env struct {
		GA struct {
			Gen int `json:"gen"`
		} `json:"ga"`
	}
	if err := json.Unmarshal(blob, &env); err != nil {
		return 0, false
	}
	return env.GA.Gen, true
}
