// Package dist shards AUDIT's generation-batched fitness evaluation
// across worker processes while keeping the search bit-identical to a
// single-node run. A Coordinator owns the GA loop's batch calls: it
// splits each generation's RunConfigs into lease-based work units,
// hands them to registered workers over HTTP/JSON, and merges results
// slot-aligned and at-most-once, so the arrays the GA sees do not
// depend on worker count, arrival order, retransmission or failure
// schedule. Workers are cattle: a worker that stalls, crashes or lies
// about liveness loses its lease to the TTL and the unit is reissued;
// a worker that keeps failing is suspended with exponential backoff
// and eventually evicted; when no live workers remain the coordinator
// degrades to evaluating locally, so the search always finishes.
//
// Determinism argument, on which the whole design rests: a measurement
// is a pure function of its RunConfig on any clean platform with equal
// PlatformDigest (the simulator is deterministic and runs build fresh
// state), so WHO evaluates a slot and WHEN cannot change WHAT it
// returns; the merge is keyed by slot, first result wins, and the GA's
// RNG never leaves the coordinator. Byte-exactness across the wire
// holds because encoding/json prints float64 with the shortest
// round-tripping representation.
package dist

import (
	"encoding/base64"
	"errors"
	"fmt"

	"repro/internal/asm"
	"repro/internal/faults"
	"repro/internal/testbed"
)

// RemoteError is a measurement error that happened on a worker and was
// carried back over the wire. It preserves the transient/permanent
// classification so the coordinator's retry policy and the GA's
// resilience machinery treat remote failures exactly like local ones.
type RemoteError struct {
	Msg         string
	IsTransient bool
}

func (e *RemoteError) Error() string { return e.Msg }

// Transient implements the structural contract ga's retry policy
// detects via errors.As.
func (e *RemoteError) Transient() bool { return e.IsTransient }

// Unwrap exposes the transient sentinel for errors.Is when the remote
// failure was transient.
func (e *RemoteError) Unwrap() error {
	if e.IsTransient {
		return faults.ErrTransient
	}
	return nil
}

// transient reports whether err's chain carries a Transient() == true
// marker — the same classification ga and faults use.
func transient(err error) bool {
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}

// Wire messages. All endpoints are POST with JSON bodies and always
// reply 200 with a JSON body; protocol conditions travel as fields, so
// a fault-injected transport only ever sees success or transport error.

type registerRequest struct {
	WorkerID string `json:"worker_id"`
	// Platform is the worker's testbed.PlatformDigest; the coordinator
	// rejects a worker measuring on different hardware, since its
	// results would silently diverge from local ones.
	Platform string `json:"platform"`
}

type registerReply struct {
	OK bool `json:"ok"`
	// Error is set when registration was refused (platform mismatch) —
	// a permanent condition; the worker should exit, not retry.
	Error string `json:"error,omitempty"`
}

type leaseRequest struct {
	WorkerID string `json:"worker_id"`
}

type leaseReply struct {
	// Unit is the leased work, nil when there is none right now.
	Unit *WireUnit `json:"unit,omitempty"`
	// LeaseMs is the lease TTL; the worker must heartbeat well inside
	// it or the unit is revoked and reissued.
	LeaseMs int64 `json:"lease_ms,omitempty"`
	// RetryMs is the suggested idle poll delay when Unit is nil.
	RetryMs int64 `json:"retry_ms,omitempty"`
	// Unregistered tells the worker the coordinator does not know it
	// (e.g. the coordinator restarted); the worker re-registers.
	Unregistered bool `json:"unregistered,omitempty"`
	// Evicted tells the worker its circuit breaker tripped permanently;
	// a well-behaved worker process exits.
	Evicted bool `json:"evicted,omitempty"`
}

type heartbeatRequest struct {
	WorkerID string `json:"worker_id"`
	Unit     uint64 `json:"unit"`
}

type heartbeatReply struct {
	// OK false means the lease is lost (expired, reassigned, or the
	// unit is already done): the worker must abandon the unit.
	OK bool `json:"ok"`
}

type resultRequest struct {
	WorkerID string `json:"worker_id"`
	Unit     uint64 `json:"unit"`
	// Error reports a whole-unit failure (the worker could not decode
	// or evaluate the unit at all).
	Error string `json:"error,omitempty"`
	// Transient classifies Error for the coordinator's retry policy.
	Transient bool `json:"transient,omitempty"`
	// Slots are the per-slot outcomes, aligned with the unit's slots.
	Slots []WireResult `json:"slots,omitempty"`
}

type resultReply struct {
	OK bool `json:"ok"`
}

// WireUnit is one lease-able work unit: a few slots of a generation's
// batch, self-contained (programs travel with it).
type WireUnit struct {
	ID uint64 `json:"id"`
	// Batch numbers the MeasureBatchContext call that produced the
	// unit (diagnostic only; slot identity lives coordinator-side).
	Batch uint64 `json:"batch"`
	// Programs is the unit's deduplicated program table, base64 over
	// asm.Encode. Threads reference it by index, so a population whose
	// candidates share programs ships each program once.
	Programs []string `json:"programs"`
	// Slots are the run configurations to measure.
	Slots []WireRunConfig `json:"slots"`
	// Lanes is the replay lane width the coordinator was asked for,
	// forwarded so worker batches take the same pipeline shape.
	Lanes int `json:"lanes"`
}

// WireThread mirrors testbed.ThreadSpec with the program indirected
// through the unit's table.
type WireThread struct {
	Prog      int    `json:"prog"`
	Module    int    `json:"module"`
	Core      int    `json:"core"`
	MaxInstrs uint64 `json:"max_instrs,omitempty"`
	StartSkew uint64 `json:"start_skew,omitempty"`
}

// WireRunConfig mirrors the distributable subset of testbed.RunConfig.
// OS interference and histogram capture are deliberately absent: a
// scheduler is live state and a histogram is an output parameter, so
// slots carrying either are evaluated on the coordinator (Distributable
// reports which).
type WireRunConfig struct {
	Threads          []WireThread         `json:"threads"`
	MaxCycles        uint64               `json:"max_cycles,omitempty"`
	WarmupCycles     uint64               `json:"warmup_cycles,omitempty"`
	SupplyVolts      float64              `json:"supply_volts,omitempty"`
	FPThrottle       int                  `json:"fp_throttle,omitempty"`
	Dither           []testbed.DitherSpec `json:"dither,omitempty"`
	RecordWaveform   bool                 `json:"record_waveform,omitempty"`
	ScopeSampleHz    float64              `json:"scope_sample_hz,omitempty"`
	TriggerThreshold float64              `json:"trigger_threshold,omitempty"`
	ExactCycleLoop   bool                 `json:"exact_cycle_loop,omitempty"`
}

// WireResult is one slot's outcome. Exactly one of M / Err is set.
// testbed.Measurement marshals directly: every field is a finite
// float64, integer, bool or slice thereof, and encoding/json round-
// trips all of them bit-exactly.
type WireResult struct {
	M         *testbed.Measurement `json:"m,omitempty"`
	Err       string               `json:"err,omitempty"`
	Transient bool                 `json:"transient,omitempty"`
}

// Distributable reports whether rc can be shipped to a worker. Slots
// with host-OS interference or histogram capture hold live local state
// and must be measured on the coordinator.
func Distributable(rc testbed.RunConfig) bool {
	return rc.OS == nil && rc.Histogram == nil
}

// encodeUnit builds the wire form of one unit from coordinator-side
// RunConfigs, deduplicating programs by pointer (a GA generation's
// threads all share per-candidate programs).
func encodeUnit(id, batch uint64, rcs []testbed.RunConfig, lanes int) (*WireUnit, error) {
	u := &WireUnit{ID: id, Batch: batch, Lanes: lanes}
	progIdx := make(map[*asm.Program]int)
	for _, rc := range rcs {
		if !Distributable(rc) {
			return nil, fmt.Errorf("dist: run config is not distributable")
		}
		wrc := WireRunConfig{
			MaxCycles:        rc.MaxCycles,
			WarmupCycles:     rc.WarmupCycles,
			SupplyVolts:      rc.SupplyVolts,
			FPThrottle:       rc.FPThrottle,
			Dither:           rc.Dither,
			RecordWaveform:   rc.RecordWaveform,
			ScopeSampleHz:    rc.ScopeSampleHz,
			TriggerThreshold: rc.TriggerThreshold,
			ExactCycleLoop:   rc.ExactCycleLoop,
		}
		for _, ts := range rc.Threads {
			idx, ok := progIdx[ts.Program]
			if !ok {
				blob, err := asm.Encode(ts.Program)
				if err != nil {
					return nil, fmt.Errorf("dist: encoding program: %w", err)
				}
				idx = len(u.Programs)
				u.Programs = append(u.Programs, base64.StdEncoding.EncodeToString(blob))
				progIdx[ts.Program] = idx
			}
			wrc.Threads = append(wrc.Threads, WireThread{
				Prog:      idx,
				Module:    ts.Module,
				Core:      ts.Core,
				MaxInstrs: ts.MaxInstrs,
				StartSkew: ts.StartSkew,
			})
		}
		u.Slots = append(u.Slots, wrc)
	}
	return u, nil
}

// decodeUnit rebuilds runnable RunConfigs from the wire form.
func decodeUnit(u *WireUnit) ([]testbed.RunConfig, error) {
	progs := make([]*asm.Program, len(u.Programs))
	for i, enc := range u.Programs {
		blob, err := base64.StdEncoding.DecodeString(enc)
		if err != nil {
			return nil, fmt.Errorf("dist: program %d: %w", i, err)
		}
		if progs[i], err = asm.Decode(blob); err != nil {
			return nil, fmt.Errorf("dist: program %d: %w", i, err)
		}
	}
	rcs := make([]testbed.RunConfig, len(u.Slots))
	for i, wrc := range u.Slots {
		rc := testbed.RunConfig{
			MaxCycles:        wrc.MaxCycles,
			WarmupCycles:     wrc.WarmupCycles,
			SupplyVolts:      wrc.SupplyVolts,
			FPThrottle:       wrc.FPThrottle,
			Dither:           wrc.Dither,
			RecordWaveform:   wrc.RecordWaveform,
			ScopeSampleHz:    wrc.ScopeSampleHz,
			TriggerThreshold: wrc.TriggerThreshold,
			ExactCycleLoop:   wrc.ExactCycleLoop,
		}
		for _, wt := range wrc.Threads {
			if wt.Prog < 0 || wt.Prog >= len(progs) {
				return nil, fmt.Errorf("dist: slot %d references program %d of %d", i, wt.Prog, len(progs))
			}
			rc.Threads = append(rc.Threads, testbed.ThreadSpec{
				Program:   progs[wt.Prog],
				Module:    wt.Module,
				Core:      wt.Core,
				MaxInstrs: wt.MaxInstrs,
				StartSkew: wt.StartSkew,
			})
		}
		rcs[i] = rc
	}
	return rcs, nil
}

// decodeResult converts one wire slot outcome back to the (m, err)
// pair the batch pipeline uses.
func decodeResult(wr WireResult) (*testbed.Measurement, error) {
	if wr.Err != "" {
		return nil, &RemoteError{Msg: wr.Err, IsTransient: wr.Transient}
	}
	if wr.M == nil {
		return nil, &RemoteError{Msg: "dist: worker returned neither measurement nor error"}
	}
	return wr.M, nil
}

// encodeResult converts one slot outcome to wire form.
func encodeResult(m *testbed.Measurement, err error) WireResult {
	if err != nil {
		return WireResult{Err: err.Error(), Transient: transient(err)}
	}
	return WireResult{M: m}
}
