package isa

import (
	"math"
	"math/bits"
)

// Value is a 128-bit datum: two 64-bit lanes. GPR values use lane Lo
// only; XMM values use both. Carrying real data values through the
// simulator is what lets the power model charge genuine data-toggle
// energy — the paper found data values change droop by ~10% and AUDIT
// therefore feeds operands that maximise toggling.
type Value struct {
	Lo, Hi uint64
}

// PopHamming returns the Hamming distance between two 128-bit values.
func PopHamming(a, b Value) int {
	return bits.OnesCount64(a.Lo^b.Lo) + bits.OnesCount64(a.Hi^b.Hi)
}

// ToggleFractionOf returns the fraction (0..1) of the 128 bit positions
// that differ between a and b. The power model multiplies this into an
// opcode's toggle-sensitive energy component.
func ToggleFractionOf(a, b Value) float64 {
	return float64(PopHamming(a, b)) / 128.0
}

// Float64s views the value as two packed float64 lanes.
func (v Value) Float64s() (lo, hi float64) {
	return math.Float64frombits(v.Lo), math.Float64frombits(v.Hi)
}

// FromFloat64s packs two float64 lanes into a value.
func FromFloat64s(lo, hi float64) Value {
	return Value{Lo: math.Float64bits(lo), Hi: math.Float64bits(hi)}
}

// sanitize replaces non-finite lanes with a bounded constant so FP
// stress loops cannot diverge to Inf/NaN (which would freeze toggling
// and distort the power model over long runs).
func sanitize(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 1.5
	}
	// Keep magnitudes in a regime where repeated mul/fma stays finite.
	if x > 1e100 || x < -1e100 {
		return x / 1e90
	}
	return x
}

func fpBinop(a, b Value, f func(x, y float64) float64) Value {
	alo, ahi := a.Float64s()
	blo, bhi := b.Float64s()
	return FromFloat64s(sanitize(f(alo, blo)), sanitize(f(ahi, bhi)))
}

// Exec computes the architectural result of the instruction given its
// source values. Inputs follow Sources() order semantics loosely: ops
// receive (dstOld, src1, src2, base) as applicable. Stores and branches
// return the zero Value; branch direction is decided by the simulator
// from loop-counter state, not here. addr is the resolved effective
// address for lea. mem is the loaded value for loads.
func Exec(in *Instruction, dstOld, src1, src2 Value, addr uint64, mem Value) Value {
	switch in.Op.Class {
	case ClassNOP, ClassStore, ClassBranch, ClassBarrier:
		return Value{}
	case ClassMove:
		switch in.Op.Shape {
		case ShapeRI:
			return Value{Lo: uint64(in.Imm)}
		default:
			return src1
		}
	case ClassIntALU:
		switch in.Op.Name {
		case "add":
			return Value{Lo: dstOld.Lo + src1.Lo}
		case "sub":
			return Value{Lo: dstOld.Lo - src1.Lo}
		case "xor":
			return Value{Lo: dstOld.Lo ^ src1.Lo}
		case "and":
			return Value{Lo: dstOld.Lo & src1.Lo}
		case "or":
			return Value{Lo: dstOld.Lo | src1.Lo}
		case "shl":
			return Value{Lo: dstOld.Lo << (uint64(in.Imm) & 63)}
		case "rol":
			return Value{Lo: bits.RotateLeft64(dstOld.Lo, int(in.Imm)&63)}
		case "dec":
			return Value{Lo: dstOld.Lo - 1}
		case "popcnt":
			return Value{Lo: uint64(bits.OnesCount64(src1.Lo))}
		}
		return Value{Lo: dstOld.Lo + src1.Lo}
	case ClassIntMul:
		return Value{Lo: dstOld.Lo * src1.Lo}
	case ClassIntDiv:
		d := src1.Lo
		if d == 0 {
			d = 1
		}
		return Value{Lo: dstOld.Lo / d}
	case ClassLEA:
		return Value{Lo: addr}
	case ClassFPAdd:
		return fpBinop(dstOld, src1, func(x, y float64) float64 { return x + y })
	case ClassFPMul:
		return fpBinop(dstOld, src1, func(x, y float64) float64 { return x * y })
	case ClassFPDiv:
		return fpBinop(dstOld, src1, func(x, y float64) float64 {
			if y == 0 {
				y = 1
			}
			return x / y
		})
	case ClassFMA:
		dlo, dhi := dstOld.Float64s()
		alo, ahi := src1.Float64s()
		blo, bhi := src2.Float64s()
		return FromFloat64s(sanitize(dlo*alo+blo), sanitize(dhi*ahi+bhi))
	case ClassSIMDInt:
		switch in.Op.Name {
		case "paddd":
			return Value{Lo: paddd32(dstOld.Lo, src1.Lo), Hi: paddd32(dstOld.Hi, src1.Hi)}
		case "pmulld":
			return Value{Lo: pmul32(dstOld.Lo, src1.Lo), Hi: pmul32(dstOld.Hi, src1.Hi)}
		case "pxor":
			return Value{Lo: dstOld.Lo ^ src1.Lo, Hi: dstOld.Hi ^ src1.Hi}
		}
		return Value{Lo: dstOld.Lo ^ src1.Lo, Hi: dstOld.Hi ^ src1.Hi}
	case ClassLoad:
		return mem
	}
	return Value{}
}

// paddd32 adds two packed pairs of 32-bit lanes inside a 64-bit word.
func paddd32(a, b uint64) uint64 {
	lo := uint32(a) + uint32(b)
	hi := uint32(a>>32) + uint32(b>>32)
	return uint64(lo) | uint64(hi)<<32
}

// pmul32 multiplies two packed pairs of 32-bit lanes.
func pmul32(a, b uint64) uint64 {
	lo := uint32(a) * uint32(b)
	hi := uint32(a>>32) * uint32(b>>32)
	return uint64(lo) | uint64(hi)<<32
}

// MaxToggleValues returns the alternating operand pair AUDIT feeds to
// maximise bit toggling between consecutive operations on the same
// functional unit (§3: "an alternating set of values that guarantee
// maximum toggling").
func MaxToggleValues() (a, b Value) {
	return Value{Lo: 0xAAAAAAAAAAAAAAAA, Hi: 0xAAAAAAAAAAAAAAAA},
		Value{Lo: 0x5555555555555555, Hi: 0x5555555555555555}
}
