package isa

import (
	"fmt"
	"strings"
)

// Instruction is one decoded instruction. Operand slots beyond what the
// opcode's shape uses are left as zero values.
type Instruction struct {
	Op *Opcode
	// Dst is the destination register (also read when Op.DstIsSrc).
	Dst Reg
	// Src1, Src2 are register sources.
	Src1, Src2 Reg
	// Imm is the immediate for ShapeRI and the barrier id for
	// ShapeBarrier.
	Imm int64
	// MemBase and MemDisp form the address [MemBase+MemDisp] for loads,
	// stores and lea.
	MemBase Reg
	MemDisp int32
	// Target is the branch-target instruction index within the program
	// (resolved by the assembler from a label).
	Target int
	// Label is the symbolic branch target, kept for round-tripping.
	Label string
}

// Valid checks structural consistency against the opcode's shape.
func (in *Instruction) Valid() error {
	if in.Op == nil {
		return fmt.Errorf("isa: instruction with nil opcode")
	}
	need := func(r Reg, what string, kind RegKind) error {
		if !r.Valid() {
			return fmt.Errorf("isa: %s: missing %s operand", in.Op.Name, what)
		}
		if kind != RegNone && r.Kind != kind {
			return fmt.Errorf("isa: %s: %s operand %s has wrong register kind", in.Op.Name, what, r)
		}
		return nil
	}
	switch in.Op.Shape {
	case ShapeNone, ShapeBarrier:
		return nil
	case ShapeRR:
		if err := need(in.Dst, "dst", in.Op.RegKind); err != nil {
			return err
		}
		return need(in.Src1, "src", in.Op.RegKind)
	case ShapeRRR:
		if err := need(in.Dst, "dst", in.Op.RegKind); err != nil {
			return err
		}
		if err := need(in.Src1, "src1", in.Op.RegKind); err != nil {
			return err
		}
		return need(in.Src2, "src2", in.Op.RegKind)
	case ShapeRI:
		return need(in.Dst, "dst", in.Op.RegKind)
	case ShapeLoad:
		if err := need(in.Dst, "dst", in.Op.RegKind); err != nil {
			return err
		}
		return need(in.MemBase, "base", RegGPR)
	case ShapeStore:
		if err := need(in.Src1, "src", in.Op.RegKind); err != nil {
			return err
		}
		return need(in.MemBase, "base", RegGPR)
	case ShapeBranch:
		if in.Label == "" {
			return fmt.Errorf("isa: %s: missing branch label", in.Op.Name)
		}
		return nil
	}
	return fmt.Errorf("isa: %s: unknown shape %d", in.Op.Name, in.Op.Shape)
}

// Sources returns the architectural registers this instruction reads,
// including the implicit dst read of two-operand forms and the address
// base of memory ops.
func (in *Instruction) Sources() []Reg {
	var out []Reg
	if in.Op.DstIsSrc && in.Dst.Valid() {
		out = append(out, in.Dst)
	}
	if in.Src1.Valid() {
		out = append(out, in.Src1)
	}
	if in.Src2.Valid() {
		out = append(out, in.Src2)
	}
	if in.MemBase.Valid() {
		out = append(out, in.MemBase)
	}
	return out
}

// Dest returns the register written, or NoReg for stores, branches,
// nops and barriers.
func (in *Instruction) Dest() Reg {
	switch in.Op.Shape {
	case ShapeStore, ShapeBranch, ShapeNone, ShapeBarrier:
		return NoReg
	}
	return in.Dst
}

// String renders the instruction in NASM-flavoured syntax, the same
// format the assembler parses.
func (in *Instruction) String() string {
	var b strings.Builder
	b.WriteString(in.Op.Name)
	switch in.Op.Shape {
	case ShapeNone:
	case ShapeRR:
		fmt.Fprintf(&b, " %s, %s", in.Dst, in.Src1)
	case ShapeRRR:
		fmt.Fprintf(&b, " %s, %s, %s", in.Dst, in.Src1, in.Src2)
	case ShapeRI:
		fmt.Fprintf(&b, " %s, %d", in.Dst, in.Imm)
	case ShapeLoad:
		fmt.Fprintf(&b, " %s, [%s%+d]", in.Dst, in.MemBase, in.MemDisp)
	case ShapeStore:
		fmt.Fprintf(&b, " [%s%+d], %s", in.MemBase, in.MemDisp, in.Src1)
	case ShapeBranch:
		fmt.Fprintf(&b, " %s", in.Label)
	case ShapeBarrier:
		fmt.Fprintf(&b, " %d", in.Imm)
	}
	return b.String()
}
