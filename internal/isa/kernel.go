package isa

import "math/bits"

// ExecFn is the pre-resolved architectural semantics of one static
// instruction: Exec's class/name dispatch done once at setup instead of
// once per dynamic instance. Kernels receive the same inputs as Exec
// and must produce bit-identical results; TestKernelMatchesExec holds
// every opcode to that.
type ExecFn func(dstOld, src1, src2 Value, addr uint64, mem Value) Value

// KernelOf compiles in's semantics to a flat function. Immediate-using
// ops (movimm, shl, rol) capture their operand at compile time; all
// other kernels are shared package-level functions.
func KernelOf(in *Instruction) ExecFn {
	switch in.Op.Class {
	case ClassNOP, ClassStore, ClassBranch, ClassBarrier:
		return execZero
	case ClassMove:
		if in.Op.Shape == ShapeRI {
			imm := Value{Lo: uint64(in.Imm)}
			return func(_, _, _ Value, _ uint64, _ Value) Value { return imm }
		}
		return execSrc1
	case ClassIntALU:
		switch in.Op.Name {
		case "add":
			return execAdd
		case "sub":
			return execSub
		case "xor":
			return execXor
		case "and":
			return execAnd
		case "or":
			return execOr
		case "shl":
			sh := uint64(in.Imm) & 63
			return func(d, _, _ Value, _ uint64, _ Value) Value {
				return Value{Lo: d.Lo << sh}
			}
		case "rol":
			r := int(in.Imm) & 63
			return func(d, _, _ Value, _ uint64, _ Value) Value {
				return Value{Lo: bits.RotateLeft64(d.Lo, r)}
			}
		case "dec":
			return execDec
		case "popcnt":
			return execPopcnt
		}
		return execAdd
	case ClassIntMul:
		return execIMul
	case ClassIntDiv:
		return execIDiv
	case ClassLEA:
		return execLEA
	case ClassFPAdd:
		return execFPAdd
	case ClassFPMul:
		return execFPMul
	case ClassFPDiv:
		return execFPDiv
	case ClassFMA:
		return execFMA
	case ClassSIMDInt:
		switch in.Op.Name {
		case "paddd":
			return execPaddd
		case "pmulld":
			return execPmulld
		}
		return execPxor
	case ClassLoad:
		return execLoad
	}
	return execZero
}

func execZero(_, _, _ Value, _ uint64, _ Value) Value { return Value{} }
func execSrc1(_, s1, _ Value, _ uint64, _ Value) Value { return s1 }

func execAdd(d, s1, _ Value, _ uint64, _ Value) Value { return Value{Lo: d.Lo + s1.Lo} }
func execSub(d, s1, _ Value, _ uint64, _ Value) Value { return Value{Lo: d.Lo - s1.Lo} }
func execXor(d, s1, _ Value, _ uint64, _ Value) Value { return Value{Lo: d.Lo ^ s1.Lo} }
func execAnd(d, s1, _ Value, _ uint64, _ Value) Value { return Value{Lo: d.Lo & s1.Lo} }
func execOr(d, s1, _ Value, _ uint64, _ Value) Value  { return Value{Lo: d.Lo | s1.Lo} }
func execDec(d, _, _ Value, _ uint64, _ Value) Value  { return Value{Lo: d.Lo - 1} }

func execPopcnt(_, s1, _ Value, _ uint64, _ Value) Value {
	return Value{Lo: uint64(bits.OnesCount64(s1.Lo))}
}

func execIMul(d, s1, _ Value, _ uint64, _ Value) Value { return Value{Lo: d.Lo * s1.Lo} }

func execIDiv(d, s1, _ Value, _ uint64, _ Value) Value {
	dv := s1.Lo
	if dv == 0 {
		dv = 1
	}
	return Value{Lo: d.Lo / dv}
}

func execLEA(_, _, _ Value, addr uint64, _ Value) Value { return Value{Lo: addr} }

func execFPAdd(d, s1, _ Value, _ uint64, _ Value) Value {
	return fpBinop(d, s1, func(x, y float64) float64 { return x + y })
}

func execFPMul(d, s1, _ Value, _ uint64, _ Value) Value {
	return fpBinop(d, s1, func(x, y float64) float64 { return x * y })
}

func execFPDiv(d, s1, _ Value, _ uint64, _ Value) Value {
	return fpBinop(d, s1, func(x, y float64) float64 {
		if y == 0 {
			y = 1
		}
		return x / y
	})
}

func execFMA(d, s1, s2 Value, _ uint64, _ Value) Value {
	dlo, dhi := d.Float64s()
	alo, ahi := s1.Float64s()
	blo, bhi := s2.Float64s()
	return FromFloat64s(sanitize(dlo*alo+blo), sanitize(dhi*ahi+bhi))
}

func execPaddd(d, s1, _ Value, _ uint64, _ Value) Value {
	return Value{Lo: paddd32(d.Lo, s1.Lo), Hi: paddd32(d.Hi, s1.Hi)}
}

func execPmulld(d, s1, _ Value, _ uint64, _ Value) Value {
	return Value{Lo: pmul32(d.Lo, s1.Lo), Hi: pmul32(d.Hi, s1.Hi)}
}

func execPxor(d, s1, _ Value, _ uint64, _ Value) Value {
	return Value{Lo: d.Lo ^ s1.Lo, Hi: d.Hi ^ s1.Hi}
}

func execLoad(_, _, _ Value, _ uint64, mem Value) Value { return mem }
