// Package isa defines the synthetic x86-64-like instruction set used by
// AUDIT and by the cycle-level simulator. It is a faithful *behavioural*
// stand-in for the subset of x86-64 the paper's code generator emits:
// integer, floating-point, and 128-bit SIMD instructions over
// general-purpose and media registers, plus loads, stores, branches and
// NOPs. Each opcode carries the microarchitectural metadata the rest of
// the system needs: execution-unit binding, latency, issue throughput,
// dynamic energy, and data-toggle sensitivity.
package isa

import "fmt"

// RegKind distinguishes the architectural register files.
type RegKind uint8

const (
	// RegNone marks an unused operand slot.
	RegNone RegKind = iota
	// RegGPR is a 64-bit general-purpose register (rax..r15).
	RegGPR
	// RegXMM is a 128-bit media register (xmm0..xmm15).
	RegXMM
)

// Reg identifies one architectural register. The zero value is "no
// register", so unused operand slots need no sentinel handling.
type Reg struct {
	Kind  RegKind
	Index uint8
}

// NumGPR and NumXMM give the architectural register-file sizes.
const (
	NumGPR = 16
	NumXMM = 16
)

// Common registers, named after their x86-64 counterparts.
var (
	NoReg = Reg{}

	RAX = GPR(0)
	RCX = GPR(1)
	RDX = GPR(2)
	RBX = GPR(3)
	RSP = GPR(4)
	RBP = GPR(5)
	RSI = GPR(6)
	RDI = GPR(7)
)

var gprNames = [NumGPR]string{
	"rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
	"r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
}

// GPR returns the i-th general-purpose register.
func GPR(i int) Reg {
	if i < 0 || i >= NumGPR {
		panic(fmt.Sprintf("isa: GPR index %d out of range", i))
	}
	return Reg{Kind: RegGPR, Index: uint8(i)}
}

// XMM returns the i-th 128-bit media register.
func XMM(i int) Reg {
	if i < 0 || i >= NumXMM {
		panic(fmt.Sprintf("isa: XMM index %d out of range", i))
	}
	return Reg{Kind: RegXMM, Index: uint8(i)}
}

// Valid reports whether r names an actual register (not the zero Reg).
func (r Reg) Valid() bool { return r.Kind != RegNone }

// String renders the register in NASM syntax.
func (r Reg) String() string {
	switch r.Kind {
	case RegNone:
		return "<none>"
	case RegGPR:
		return gprNames[r.Index]
	case RegXMM:
		return fmt.Sprintf("xmm%d", r.Index)
	default:
		return fmt.Sprintf("<bad reg kind %d>", r.Kind)
	}
}

// ParseReg parses a register name in NASM syntax ("rax", "xmm3").
func ParseReg(s string) (Reg, error) {
	for i, n := range gprNames {
		if s == n {
			return GPR(i), nil
		}
	}
	var idx int
	if n, err := fmt.Sscanf(s, "xmm%d", &idx); err == nil && n == 1 {
		if idx >= 0 && idx < NumXMM {
			return XMM(idx), nil
		}
	}
	return NoReg, fmt.Errorf("isa: unknown register %q", s)
}

// FlatIndex maps the register onto a dense [0, NumGPR+NumXMM) range,
// useful for rename tables and scoreboards. Panics on the zero Reg.
func (r Reg) FlatIndex() int {
	switch r.Kind {
	case RegGPR:
		return int(r.Index)
	case RegXMM:
		return NumGPR + int(r.Index)
	}
	panic("isa: FlatIndex of invalid register")
}

// TotalRegs is the number of distinct architectural registers.
const TotalRegs = NumGPR + NumXMM
