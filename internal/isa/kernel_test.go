package isa

import (
	"math/rand"
	"testing"
)

// randValue draws a 128-bit value from a mix of regimes: raw random
// bits, small integers, and packed float64 lanes — so FP kernels see
// normal, denormal-ish and huge magnitudes and the sanitize clamps get
// exercised.
func randValue(rng *rand.Rand) Value {
	switch rng.Intn(4) {
	case 0:
		return Value{Lo: rng.Uint64(), Hi: rng.Uint64()}
	case 1:
		return Value{Lo: uint64(rng.Intn(1024))}
	case 2:
		return FromFloat64s(rng.NormFloat64()*1e3, rng.NormFloat64()*1e-3)
	default:
		return FromFloat64s(rng.NormFloat64()*1e120, rng.NormFloat64())
	}
}

// TestKernelMatchesExec holds every opcode's compiled kernel to bit
// identity with the reference Exec over randomized operands, addresses
// and immediates.
func TestKernelMatchesExec(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, op := range AllOpcodes() {
		op := op
		t.Run(op.Name, func(t *testing.T) {
			for trial := 0; trial < 200; trial++ {
				in := &Instruction{Op: op, Imm: rng.Int63n(1 << 20)}
				if trial%3 == 0 {
					in.Imm = -in.Imm
				}
				switch op.Shape {
				case ShapeRR, ShapeRRR, ShapeRI:
					if op.RegKind == RegXMM {
						in.Dst, in.Src1, in.Src2 = XMM(1), XMM(2), XMM(3)
					} else {
						in.Dst, in.Src1, in.Src2 = GPR(1), GPR(2), GPR(3)
					}
				case ShapeLoad:
					in.Dst, in.MemBase = GPR(1), GPR(5)
				case ShapeStore:
					in.Src1, in.MemBase = GPR(1), GPR(5)
				}
				k := KernelOf(in)
				dstOld, src1, src2 := randValue(rng), randValue(rng), randValue(rng)
				addr := rng.Uint64()
				mem := randValue(rng)
				want := Exec(in, dstOld, src1, src2, addr, mem)
				got := k(dstOld, src1, src2, addr, mem)
				if got != want {
					t.Fatalf("trial %d: kernel(%v) = %#x/%#x, Exec = %#x/%#x",
						trial, in, got.Lo, got.Hi, want.Lo, want.Hi)
				}
			}
		})
	}
}
