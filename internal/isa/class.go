package isa

// Class is the broad behavioural category of an instruction. The
// simulator's schedulers, the power model and AUDIT's code generator all
// dispatch on it.
type Class uint8

const (
	// ClassNOP consumes fetch/decode bandwidth but no back-end
	// resources — no scheduler entry, no physical register, no result
	// bus. This matches the paper's observation (§5.A.5) that NOPs are
	// designed to be very low power on the experimental processor.
	ClassNOP Class = iota
	// ClassIntALU is a single-cycle integer ALU operation.
	ClassIntALU
	// ClassIntMul is a pipelined integer multiply.
	ClassIntMul
	// ClassIntDiv is a long-latency, unpipelined integer divide.
	ClassIntDiv
	// ClassLEA is an address-generation arithmetic op (AGU-bound).
	ClassLEA
	// ClassFPAdd is a floating-point add/sub (scalar or packed).
	ClassFPAdd
	// ClassFPMul is a floating-point multiply.
	ClassFPMul
	// ClassFMA is a fused multiply-add, the highest-power FP op.
	ClassFMA
	// ClassFPDiv is a long-latency FP divide.
	ClassFPDiv
	// ClassSIMDInt is a packed-integer SIMD operation.
	ClassSIMDInt
	// ClassLoad reads memory into a register.
	ClassLoad
	// ClassStore writes a register to memory.
	ClassStore
	// ClassBranch is a conditional or unconditional branch.
	ClassBranch
	// ClassMove is a register-to-register move (or immediate load).
	ClassMove
	// ClassBarrier is a synthetic thread-synchronisation primitive used
	// by the multi-threaded workloads (PARSEC-style barriers and the
	// barrier stressmark of §5.A.1). Real code uses locked RMW + spin;
	// the simulator models the rendezvous plus memory-hierarchy release
	// skew directly.
	ClassBarrier

	numClasses
)

var classNames = [numClasses]string{
	"NOP", "IntALU", "IntMul", "IntDiv", "LEA",
	"FPAdd", "FPMul", "FMA", "FPDiv", "SIMDInt",
	"Load", "Store", "Branch", "Move", "Barrier",
}

func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return "Class(?)"
}

// IsFP reports whether the class executes in the floating-point/SIMD
// cluster (the unit shared between sibling threads in a Bulldozer-style
// module, and the unit FPU throttling limits).
func (c Class) IsFP() bool {
	switch c {
	case ClassFPAdd, ClassFPMul, ClassFMA, ClassFPDiv, ClassSIMDInt:
		return true
	}
	return false
}

// IsMem reports whether the class occupies the load/store unit.
func (c Class) IsMem() bool { return c == ClassLoad || c == ClassStore }

// Unit identifies a back-end execution resource for scheduling and for
// per-unit activity/power accounting.
type Unit uint8

const (
	// UnitNone: the instruction uses no execution unit (NOP).
	UnitNone Unit = iota
	// UnitALU: integer ALU pipes.
	UnitALU
	// UnitAGU: address-generation pipes (also LEA).
	UnitAGU
	// UnitIMul: the integer multiplier.
	UnitIMul
	// UnitIDiv: the integer divider (unpipelined).
	UnitIDiv
	// UnitFPU: the shared floating-point/SIMD pipes.
	UnitFPU
	// UnitLSU: load/store unit and L1D port.
	UnitLSU
	// UnitBranch: branch-execution pipe.
	UnitBranch

	// NumUnits is the number of distinct execution-unit kinds.
	NumUnits
)

var unitNames = [NumUnits]string{
	"none", "ALU", "AGU", "IMul", "IDiv", "FPU", "LSU", "Branch",
}

func (u Unit) String() string {
	if int(u) < len(unitNames) {
		return unitNames[u]
	}
	return "Unit(?)"
}
