package isa

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestRegRoundTrip(t *testing.T) {
	for i := 0; i < NumGPR; i++ {
		r := GPR(i)
		got, err := ParseReg(r.String())
		if err != nil {
			t.Fatalf("ParseReg(%q): %v", r.String(), err)
		}
		if got != r {
			t.Errorf("round trip GPR %d: got %v", i, got)
		}
	}
	for i := 0; i < NumXMM; i++ {
		r := XMM(i)
		got, err := ParseReg(r.String())
		if err != nil {
			t.Fatalf("ParseReg(%q): %v", r.String(), err)
		}
		if got != r {
			t.Errorf("round trip XMM %d: got %v", i, got)
		}
	}
}

func TestParseRegRejectsGarbage(t *testing.T) {
	for _, s := range []string{"", "foo", "xmm16", "xmm-1", "rax ", "XMM0"} {
		if _, err := ParseReg(s); err == nil {
			t.Errorf("ParseReg(%q) succeeded, want error", s)
		}
	}
}

func TestFlatIndexDense(t *testing.T) {
	seen := make(map[int]bool)
	for i := 0; i < NumGPR; i++ {
		seen[GPR(i).FlatIndex()] = true
	}
	for i := 0; i < NumXMM; i++ {
		seen[XMM(i).FlatIndex()] = true
	}
	if len(seen) != TotalRegs {
		t.Fatalf("FlatIndex not dense: %d distinct, want %d", len(seen), TotalRegs)
	}
	for i := 0; i < TotalRegs; i++ {
		if !seen[i] {
			t.Errorf("FlatIndex gap at %d", i)
		}
	}
}

func TestOpcodeTableInvariants(t *testing.T) {
	for _, op := range AllOpcodes() {
		if op.Latency < 1 {
			t.Errorf("%s: latency %d < 1", op.Name, op.Latency)
		}
		if op.RecipThroughput < 1 {
			t.Errorf("%s: throughput %d < 1", op.Name, op.RecipThroughput)
		}
		if op.EnergyPJ <= 0 {
			t.Errorf("%s: energy %v <= 0", op.Name, op.EnergyPJ)
		}
		if op.ToggleFraction < 0 || op.ToggleFraction > 1 {
			t.Errorf("%s: toggle fraction %v outside [0,1]", op.Name, op.ToggleFraction)
		}
		if op.Class.IsFP() && op.Unit != UnitFPU {
			t.Errorf("%s: FP class but unit %v", op.Name, op.Unit)
		}
		if op.Class == ClassNOP && op.Unit != UnitNone {
			t.Errorf("%s: NOP must not bind an execution unit", op.Name)
		}
	}
}

func TestNOPIsCheapestAndFMAIsHighestPower(t *testing.T) {
	nop := MustLookup("nop")
	fma := MustLookup("vfmadd132pd")
	for _, op := range AllOpcodes() {
		if op != nop && op.EnergyPJ <= nop.EnergyPJ {
			t.Errorf("%s energy %v not above NOP %v", op.Name, op.EnergyPJ, nop.EnergyPJ)
		}
		if op.EnergyPJ > fma.EnergyPJ {
			t.Errorf("%s energy %v exceeds FMA %v — FP/SIMD should be the power ceiling", op.Name, op.EnergyPJ, fma.EnergyPJ)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("bogus"); err == nil {
		t.Fatal("Lookup(bogus) succeeded")
	}
}

func TestOpcodesByClass(t *testing.T) {
	fp := OpcodesByClass(ClassFPAdd, ClassFPMul, ClassFMA)
	if len(fp) == 0 {
		t.Fatal("no FP opcodes")
	}
	for _, op := range fp {
		if !op.Class.IsFP() {
			t.Errorf("%s: class %v not FP", op.Name, op.Class)
		}
	}
}

func TestInstructionStringShapes(t *testing.T) {
	cases := []struct {
		in   Instruction
		want string
	}{
		{Instruction{Op: MustLookup("nop")}, "nop"},
		{Instruction{Op: MustLookup("add"), Dst: RAX, Src1: RCX}, "add rax, rcx"},
		{Instruction{Op: MustLookup("vfmadd132pd"), Dst: XMM(0), Src1: XMM(1), Src2: XMM(2)}, "vfmadd132pd xmm0, xmm1, xmm2"},
		{Instruction{Op: MustLookup("movimm"), Dst: RDX, Imm: 42}, "movimm rdx, 42"},
		{Instruction{Op: MustLookup("load"), Dst: RAX, MemBase: RBP, MemDisp: 16}, "load rax, [rbp+16]"},
		{Instruction{Op: MustLookup("store"), Src1: RAX, MemBase: RBP, MemDisp: -8}, "store [rbp-8], rax"},
		{Instruction{Op: MustLookup("jnz"), Label: "loop"}, "jnz loop"},
		{Instruction{Op: MustLookup("barrier"), Imm: 3}, "barrier 3"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestInstructionValid(t *testing.T) {
	good := Instruction{Op: MustLookup("add"), Dst: RAX, Src1: RCX}
	if err := good.Valid(); err != nil {
		t.Errorf("valid add rejected: %v", err)
	}
	bad := []Instruction{
		{Op: MustLookup("add"), Dst: RAX},                          // missing src
		{Op: MustLookup("add"), Dst: XMM(0), Src1: XMM(1)},         // wrong kind
		{Op: MustLookup("addpd"), Dst: RAX, Src1: RCX},             // wrong kind
		{Op: MustLookup("jnz")},                                    // missing label
		{Op: MustLookup("load"), Dst: RAX, MemBase: XMM(0)},        // base must be GPR
		{Op: MustLookup("vfmadd132pd"), Dst: XMM(0), Src1: XMM(1)}, // missing src2
	}
	for i, in := range bad {
		if err := in.Valid(); err == nil {
			t.Errorf("bad[%d] %q accepted", i, in.String())
		}
	}
}

func TestSourcesIncludesDstIsSrcAndBase(t *testing.T) {
	in := Instruction{Op: MustLookup("add"), Dst: RAX, Src1: RCX}
	src := in.Sources()
	if len(src) != 2 || src[0] != RAX || src[1] != RCX {
		t.Errorf("add sources = %v", src)
	}
	ld := Instruction{Op: MustLookup("load"), Dst: RAX, MemBase: RBP}
	src = ld.Sources()
	if len(src) != 1 || src[0] != RBP {
		t.Errorf("load sources = %v", src)
	}
	if ld.Dest() != RAX {
		t.Errorf("load dest = %v", ld.Dest())
	}
	st := Instruction{Op: MustLookup("store"), Src1: RAX, MemBase: RBP}
	if st.Dest() != NoReg {
		t.Errorf("store dest = %v, want none", st.Dest())
	}
}

func TestExecIntSemantics(t *testing.T) {
	add := Instruction{Op: MustLookup("add"), Dst: RAX, Src1: RCX}
	got := Exec(&add, Value{Lo: 7}, Value{Lo: 5}, Value{}, 0, Value{})
	if got.Lo != 12 {
		t.Errorf("add: got %d want 12", got.Lo)
	}
	xor := Instruction{Op: MustLookup("xor"), Dst: RAX, Src1: RCX}
	got = Exec(&xor, Value{Lo: 0xFF}, Value{Lo: 0x0F}, Value{}, 0, Value{})
	if got.Lo != 0xF0 {
		t.Errorf("xor: got %#x", got.Lo)
	}
	div := Instruction{Op: MustLookup("idiv"), Dst: RAX, Src1: RCX}
	got = Exec(&div, Value{Lo: 10}, Value{Lo: 0}, Value{}, 0, Value{})
	if got.Lo != 10 {
		t.Errorf("idiv by zero should divide by 1: got %d", got.Lo)
	}
}

func TestExecFPSemantics(t *testing.T) {
	fma := Instruction{Op: MustLookup("vfmadd132pd"), Dst: XMM(0), Src1: XMM(1), Src2: XMM(2)}
	d := FromFloat64s(2, 3)
	a := FromFloat64s(4, 5)
	b := FromFloat64s(1, 1)
	got := Exec(&fma, d, a, b, 0, Value{})
	lo, hi := got.Float64s()
	if lo != 9 || hi != 16 {
		t.Errorf("fma: got (%v,%v) want (9,16)", lo, hi)
	}
}

func TestExecSanitizesNonFinite(t *testing.T) {
	mul := Instruction{Op: MustLookup("mulpd"), Dst: XMM(0), Src1: XMM(1)}
	d := FromFloat64s(math.Inf(1), math.NaN())
	got := Exec(&mul, d, FromFloat64s(2, 2), Value{}, 0, Value{})
	lo, hi := got.Float64s()
	if math.IsInf(lo, 0) || math.IsNaN(lo) || math.IsInf(hi, 0) || math.IsNaN(hi) {
		t.Errorf("sanitize failed: (%v, %v)", lo, hi)
	}
}

func TestToggleFractionProperties(t *testing.T) {
	a, b := MaxToggleValues()
	if got := ToggleFractionOf(a, b); got != 1.0 {
		t.Errorf("max toggle pair fraction = %v, want 1", got)
	}
	// Property: symmetric, zero on identity, bounded.
	f := func(a, b Value) bool {
		x, y := ToggleFractionOf(a, b), ToggleFractionOf(b, a)
		return x == y && x >= 0 && x <= 1 && ToggleFractionOf(a, a) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPackedLaneOps(t *testing.T) {
	// paddd adds independent 32-bit lanes without carry between them.
	a := uint64(0xFFFFFFFF_00000001)
	b := uint64(0x00000001_00000002)
	if got := paddd32(a, b); got != 0x00000000_00000003 {
		t.Errorf("paddd32 = %#x", got)
	}
	if got := pmul32(0x00000002_00000003, 0x00000004_00000005); got != 0x00000008_0000000F {
		t.Errorf("pmul32 = %#x", got)
	}
}

func TestInstructionStringParsesBackAsWords(t *testing.T) {
	// Smoke-check that String output stays within the token grammar the
	// assembler package consumes: mnemonic then comma-separated operands.
	in := Instruction{Op: MustLookup("mulpd"), Dst: XMM(3), Src1: XMM(4)}
	s := in.String()
	if !strings.HasPrefix(s, "mulpd ") || !strings.Contains(s, ",") {
		t.Errorf("unexpected format %q", s)
	}
}
