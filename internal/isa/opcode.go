package isa

import (
	"fmt"
	"sort"
)

// OperandShape describes how an opcode's operands are laid out, which
// the assembler and the random code generator both need.
type OperandShape uint8

const (
	// ShapeNone: no operands (nop).
	ShapeNone OperandShape = iota
	// ShapeRR: dst, src (dst is also a source for two-operand x86 ops).
	ShapeRR
	// ShapeRRR: dst, src1, src2 (three-operand AVX-style form).
	ShapeRRR
	// ShapeRI: dst, imm.
	ShapeRI
	// ShapeLoad: dst, [base+disp].
	ShapeLoad
	// ShapeStore: [base+disp], src.
	ShapeStore
	// ShapeBranch: label.
	ShapeBranch
	// ShapeBarrier: imm (barrier id).
	ShapeBarrier
)

// Opcode is one instruction mnemonic with its full microarchitectural
// metadata. Opcodes are immutable after table construction; code holds
// *Opcode pointers and compares them by identity.
type Opcode struct {
	// Name is the NASM mnemonic.
	Name string
	// Class is the behavioural category.
	Class Class
	// Unit is the execution unit the op occupies when it issues.
	Unit Unit
	// Shape describes operand layout.
	Shape OperandShape
	// RegKind is the register file the data operands live in.
	RegKind RegKind
	// Latency is the result latency in cycles (≥1 for non-NOPs).
	Latency int
	// RecipThroughput is the issue interval in cycles for back-to-back
	// ops on the same unit: 1 = fully pipelined, N = one per N cycles.
	RecipThroughput int
	// EnergyPJ is the nominal dynamic energy of one execution, in
	// picojoules, at maximum data toggling.
	EnergyPJ float64
	// ToggleFraction is the fraction of EnergyPJ that scales with data
	// toggling (Hamming distance between consecutive operand values on
	// the same unit). The paper measured ~10% droop impact from data
	// values; high-width SIMD ops have the largest toggle component.
	ToggleFraction float64
	// DstIsSrc marks two-operand x86 forms where the destination is
	// also read (add rax, rbx → rax = rax+rbx).
	DstIsSrc bool
}

func (o *Opcode) String() string { return o.Name }

// NumSrc returns how many register sources the shape implies (not
// counting the implicit dst-is-src read).
func (o *Opcode) NumSrc() int {
	switch o.Shape {
	case ShapeRR:
		return 1
	case ShapeRRR:
		return 2
	case ShapeStore:
		return 1
	default:
		return 0
	}
}

// opcodeTable is the full instruction repertoire. Energies are
// calibrated so a 4-module chip running a dense FMA loop draws tens of
// watts of dynamic power at nominal voltage — the absolute scale only
// matters relative to the PDN model, but keeping it physical makes the
// numbers legible. Latency/throughput values follow the Bulldozer
// software-optimization-guide ballpark.
var opcodeTable = []Opcode{
	// NOP: fetch/decode only. Its tiny energy is charged to the front
	// end, not to any execution unit.
	{Name: "nop", Class: ClassNOP, Unit: UnitNone, Shape: ShapeNone, Latency: 1, RecipThroughput: 1, EnergyPJ: 4, ToggleFraction: 0},

	// Integer ALU.
	{Name: "add", Class: ClassIntALU, Unit: UnitALU, Shape: ShapeRR, RegKind: RegGPR, Latency: 1, RecipThroughput: 1, EnergyPJ: 28, ToggleFraction: 0.30, DstIsSrc: true},
	{Name: "sub", Class: ClassIntALU, Unit: UnitALU, Shape: ShapeRR, RegKind: RegGPR, Latency: 1, RecipThroughput: 1, EnergyPJ: 28, ToggleFraction: 0.30, DstIsSrc: true},
	{Name: "xor", Class: ClassIntALU, Unit: UnitALU, Shape: ShapeRR, RegKind: RegGPR, Latency: 1, RecipThroughput: 1, EnergyPJ: 24, ToggleFraction: 0.35, DstIsSrc: true},
	{Name: "and", Class: ClassIntALU, Unit: UnitALU, Shape: ShapeRR, RegKind: RegGPR, Latency: 1, RecipThroughput: 1, EnergyPJ: 24, ToggleFraction: 0.35, DstIsSrc: true},
	{Name: "or", Class: ClassIntALU, Unit: UnitALU, Shape: ShapeRR, RegKind: RegGPR, Latency: 1, RecipThroughput: 1, EnergyPJ: 24, ToggleFraction: 0.35, DstIsSrc: true},
	{Name: "shl", Class: ClassIntALU, Unit: UnitALU, Shape: ShapeRI, RegKind: RegGPR, Latency: 1, RecipThroughput: 1, EnergyPJ: 26, ToggleFraction: 0.30, DstIsSrc: true},
	{Name: "rol", Class: ClassIntALU, Unit: UnitALU, Shape: ShapeRI, RegKind: RegGPR, Latency: 1, RecipThroughput: 1, EnergyPJ: 26, ToggleFraction: 0.30, DstIsSrc: true},
	{Name: "dec", Class: ClassIntALU, Unit: UnitALU, Shape: ShapeRR, RegKind: RegGPR, Latency: 1, RecipThroughput: 1, EnergyPJ: 22, ToggleFraction: 0.20, DstIsSrc: true},
	{Name: "popcnt", Class: ClassIntALU, Unit: UnitALU, Shape: ShapeRR, RegKind: RegGPR, Latency: 2, RecipThroughput: 1, EnergyPJ: 34, ToggleFraction: 0.40},

	// Integer multiply / divide.
	{Name: "imul", Class: ClassIntMul, Unit: UnitIMul, Shape: ShapeRR, RegKind: RegGPR, Latency: 4, RecipThroughput: 1, EnergyPJ: 75, ToggleFraction: 0.45, DstIsSrc: true},
	{Name: "idiv", Class: ClassIntDiv, Unit: UnitIDiv, Shape: ShapeRR, RegKind: RegGPR, Latency: 22, RecipThroughput: 22, EnergyPJ: 180, ToggleFraction: 0.20, DstIsSrc: true},

	// Address generation.
	{Name: "lea", Class: ClassLEA, Unit: UnitAGU, Shape: ShapeLoad, RegKind: RegGPR, Latency: 1, RecipThroughput: 1, EnergyPJ: 26, ToggleFraction: 0.25},

	// Moves.
	{Name: "mov", Class: ClassMove, Unit: UnitALU, Shape: ShapeRR, RegKind: RegGPR, Latency: 1, RecipThroughput: 1, EnergyPJ: 20, ToggleFraction: 0.30},
	{Name: "movimm", Class: ClassMove, Unit: UnitALU, Shape: ShapeRI, RegKind: RegGPR, Latency: 1, RecipThroughput: 1, EnergyPJ: 20, ToggleFraction: 0.25},
	{Name: "movaps", Class: ClassMove, Unit: UnitFPU, Shape: ShapeRR, RegKind: RegXMM, Latency: 1, RecipThroughput: 1, EnergyPJ: 34, ToggleFraction: 0.45},

	// Scalar FP.
	{Name: "addsd", Class: ClassFPAdd, Unit: UnitFPU, Shape: ShapeRR, RegKind: RegXMM, Latency: 5, RecipThroughput: 1, EnergyPJ: 140, ToggleFraction: 0.35, DstIsSrc: true},
	{Name: "mulsd", Class: ClassFPMul, Unit: UnitFPU, Shape: ShapeRR, RegKind: RegXMM, Latency: 5, RecipThroughput: 1, EnergyPJ: 200, ToggleFraction: 0.40, DstIsSrc: true},
	{Name: "divsd", Class: ClassFPDiv, Unit: UnitFPU, Shape: ShapeRR, RegKind: RegXMM, Latency: 20, RecipThroughput: 20, EnergyPJ: 260, ToggleFraction: 0.15, DstIsSrc: true},

	// Packed FP (128-bit): the high-power ops.
	{Name: "addpd", Class: ClassFPAdd, Unit: UnitFPU, Shape: ShapeRR, RegKind: RegXMM, Latency: 5, RecipThroughput: 1, EnergyPJ: 260, ToggleFraction: 0.45, DstIsSrc: true},
	{Name: "mulpd", Class: ClassFPMul, Unit: UnitFPU, Shape: ShapeRR, RegKind: RegXMM, Latency: 5, RecipThroughput: 1, EnergyPJ: 380, ToggleFraction: 0.50, DstIsSrc: true},
	{Name: "mulps", Class: ClassFPMul, Unit: UnitFPU, Shape: ShapeRR, RegKind: RegXMM, Latency: 5, RecipThroughput: 1, EnergyPJ: 360, ToggleFraction: 0.50, DstIsSrc: true},
	{Name: "vfmadd132pd", Class: ClassFMA, Unit: UnitFPU, Shape: ShapeRRR, RegKind: RegXMM, Latency: 6, RecipThroughput: 1, EnergyPJ: 500, ToggleFraction: 0.50, DstIsSrc: true},
	{Name: "vfmadd231ps", Class: ClassFMA, Unit: UnitFPU, Shape: ShapeRRR, RegKind: RegXMM, Latency: 6, RecipThroughput: 1, EnergyPJ: 480, ToggleFraction: 0.50, DstIsSrc: true},

	// Packed integer SIMD.
	{Name: "paddd", Class: ClassSIMDInt, Unit: UnitFPU, Shape: ShapeRR, RegKind: RegXMM, Latency: 2, RecipThroughput: 1, EnergyPJ: 200, ToggleFraction: 0.45, DstIsSrc: true},
	{Name: "pmulld", Class: ClassSIMDInt, Unit: UnitFPU, Shape: ShapeRR, RegKind: RegXMM, Latency: 4, RecipThroughput: 1, EnergyPJ: 330, ToggleFraction: 0.50, DstIsSrc: true},
	{Name: "pxor", Class: ClassSIMDInt, Unit: UnitFPU, Shape: ShapeRR, RegKind: RegXMM, Latency: 1, RecipThroughput: 1, EnergyPJ: 120, ToggleFraction: 0.50, DstIsSrc: true},

	// Memory.
	{Name: "load", Class: ClassLoad, Unit: UnitLSU, Shape: ShapeLoad, RegKind: RegGPR, Latency: 4, RecipThroughput: 1, EnergyPJ: 65, ToggleFraction: 0.25},
	{Name: "loadx", Class: ClassLoad, Unit: UnitLSU, Shape: ShapeLoad, RegKind: RegXMM, Latency: 5, RecipThroughput: 1, EnergyPJ: 115, ToggleFraction: 0.30},
	{Name: "store", Class: ClassStore, Unit: UnitLSU, Shape: ShapeStore, RegKind: RegGPR, Latency: 1, RecipThroughput: 1, EnergyPJ: 60, ToggleFraction: 0.25},
	{Name: "storex", Class: ClassStore, Unit: UnitLSU, Shape: ShapeStore, RegKind: RegXMM, Latency: 1, RecipThroughput: 1, EnergyPJ: 110, ToggleFraction: 0.30},

	// Control flow.
	{Name: "jmp", Class: ClassBranch, Unit: UnitBranch, Shape: ShapeBranch, Latency: 1, RecipThroughput: 1, EnergyPJ: 30, ToggleFraction: 0},
	{Name: "jnz", Class: ClassBranch, Unit: UnitBranch, Shape: ShapeBranch, Latency: 1, RecipThroughput: 1, EnergyPJ: 32, ToggleFraction: 0},

	// Synchronisation.
	{Name: "barrier", Class: ClassBarrier, Unit: UnitLSU, Shape: ShapeBarrier, Latency: 1, RecipThroughput: 1, EnergyPJ: 50, ToggleFraction: 0},
}

var opcodeByName map[string]*Opcode

func init() {
	opcodeByName = make(map[string]*Opcode, len(opcodeTable))
	for i := range opcodeTable {
		op := &opcodeTable[i]
		if op.Latency < 1 {
			panic(fmt.Sprintf("isa: opcode %s has latency %d", op.Name, op.Latency))
		}
		if op.RecipThroughput < 1 {
			panic(fmt.Sprintf("isa: opcode %s has throughput %d", op.Name, op.RecipThroughput))
		}
		if _, dup := opcodeByName[op.Name]; dup {
			panic("isa: duplicate opcode " + op.Name)
		}
		opcodeByName[op.Name] = op
	}
}

// Lookup returns the opcode with the given mnemonic, or an error.
func Lookup(name string) (*Opcode, error) {
	if op, ok := opcodeByName[name]; ok {
		return op, nil
	}
	return nil, fmt.Errorf("isa: unknown opcode %q", name)
}

// MustLookup is Lookup for table-driven construction; it panics on
// unknown mnemonics.
func MustLookup(name string) *Opcode {
	op, err := Lookup(name)
	if err != nil {
		panic(err)
	}
	return op
}

// AllOpcodes returns the full repertoire sorted by name. The slice is
// fresh; the *Opcode values are the canonical shared instances.
func AllOpcodes() []*Opcode {
	out := make([]*Opcode, 0, len(opcodeTable))
	for i := range opcodeTable {
		out = append(out, &opcodeTable[i])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// OpcodesByClass returns the opcodes belonging to any of the given
// classes, sorted by name.
func OpcodesByClass(classes ...Class) []*Opcode {
	want := map[Class]bool{}
	for _, c := range classes {
		want[c] = true
	}
	var out []*Opcode
	for _, op := range AllOpcodes() {
		if want[op.Class] {
			out = append(out, op)
		}
	}
	return out
}
