// Multicore dithering: why worst-case droop needs guaranteed thread
// alignment, and how the §3.B dithering algorithm provides it.
//
//	go run ./examples/multicore_dithering
//
// Three measurements of the same 4-thread resonant stressmark:
//
//  1. threads started in phase            → worst-case droop
//  2. threads started half a period apart → droops partially cancel
//  3. misaligned threads + dithering      → padding sweeps the
//     alignment space and recovers the worst case deterministically
//
// plus the §3.B cost table: the exact algorithm explodes past four
// cores; the approximate algorithm (δ-granular alignment) makes eight
// cores tractable.
package main

import (
	"fmt"
	"log"

	"repro/audit"
	"repro/internal/report"
	"repro/internal/testbed"
	"repro/internal/workloads"
)

func main() {
	plat := audit.BulldozerPlatform()
	const period = 36 // the platform's resonance period in cycles
	prog := workloads.SMRes(period)

	measure := func(adjust func(*audit.RunConfig)) float64 {
		specs, err := testbed.SpreadPlacement(plat.Chip, prog, 4)
		if err != nil {
			log.Fatal(err)
		}
		rc := audit.RunConfig{Threads: specs, MaxCycles: 30000, WarmupCycles: 3000}
		if adjust != nil {
			adjust(&rc)
		}
		m, err := plat.Run(rc)
		if err != nil {
			log.Fatal(err)
		}
		return m.MaxDroopV
	}

	aligned := measure(nil)
	misaligned := measure(func(rc *audit.RunConfig) {
		for i := range rc.Threads {
			if i%2 == 1 {
				rc.Threads[i].StartSkew = period / 2
			}
		}
	})

	// Dither the skewed threads: one cycle of padding every M cycles
	// walks core 1 (and 3) through every relative alignment.
	const mCycles = 8 * period
	dithered := measure(func(rc *audit.RunConfig) {
		for i := range rc.Threads {
			if i%2 == 1 {
				rc.Threads[i].StartSkew = period / 2
			}
		}
		rc.MaxCycles = uint64(mCycles*period) + 30000
		rc.Dither = []audit.DitherSpec{
			{Core: rc.Threads[1].GlobalCore(plat.Chip), PeriodCycles: mCycles, PadCycles: 1},
			{Core: rc.Threads[3].GlobalCore(plat.Chip), PeriodCycles: mCycles, PadCycles: 1},
		}
	})

	fmt.Println(report.BarChart("4T SM-Res droop by alignment (mV)",
		[]string{"in phase", "anti-phase", "anti-phase + dithering"},
		[]float64{aligned * 1e3, misaligned * 1e3, dithered * 1e3}, 40))
	fmt.Printf("dithering recovered %.0f%% of the worst-case droop from an arbitrary skew\n\n",
		100*dithered/aligned)

	// The cost side (§3.B), at the paper's operating point:
	// 4 GHz, L+H = 24, M = 960 cycles of sustained resonance.
	tbl := &report.Table{
		Title:   "alignment sweep cost (4 GHz, L+H=24, M=960)",
		Headers: []string{"cores", "algorithm", "sweep time"},
	}
	for _, row := range []struct {
		cores, delta int
	}{{2, 0}, {4, 0}, {8, 0}, {8, 3}} {
		var plan audit.DitherPlan
		var err error
		var name string
		if row.delta == 0 {
			plan, err = audit.ExactDither(make([]int, row.cores), 24, 960)
			name = "exact"
		} else {
			plan, err = audit.ApproxDither(make([]int, row.cores), 24, 960, row.delta)
			name = fmt.Sprintf("approximate δ=%d", row.delta)
		}
		if err != nil {
			log.Fatal(err)
		}
		tbl.AddRow(fmt.Sprint(row.cores), name, fmtDuration(plan.SweepSeconds(4e9)))
	}
	fmt.Println(tbl)
	fmt.Println("the paper's numbers: 4-core exact 3.3 ms; 8-core exact 18.35 min;")
	fmt.Println("8-core approximate with δ=3: 67 ms — reproduced above.")
}

func fmtDuration(s float64) string {
	switch {
	case s < 1:
		return fmt.Sprintf("%.1f ms", s*1e3)
	case s < 120:
		return fmt.Sprintf("%.2f s", s)
	default:
		return fmt.Sprintf("%.2f min", s/60)
	}
}
