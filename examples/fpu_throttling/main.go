// FPU throttling: the Table 2 scenario. A hardware throttle that caps
// FP issue per cycle suppresses the existing resonant stressmarks —
// and AUDIT, re-run with the throttle enabled, finds a new stress path
// that works around it.
//
//	go run ./examples/fpu_throttling
package main

import (
	"fmt"
	"log"

	"repro/audit"
	"repro/internal/report"
	"repro/internal/testbed"
	"repro/internal/workloads"
)

func main() {
	plat := audit.BulldozerPlatform()
	const period = 36
	smRes := workloads.SMRes(period)

	measure := func(prog *audit.Program, throttle int) *audit.Measurement {
		specs, err := testbed.SpreadPlacement(plat.Chip, prog, 4)
		if err != nil {
			log.Fatal(err)
		}
		m, err := plat.Run(audit.RunConfig{
			Threads:      specs,
			MaxCycles:    28000,
			WarmupCycles: 3000,
			FPThrottle:   throttle,
		})
		if err != nil {
			log.Fatal(err)
		}
		return m
	}

	// 1. The throttle works: SM-Res's droop collapses.
	off := measure(smRes, 0)
	on := measure(smRes, 1)
	fmt.Printf("SM-Res droop: %.1f mV unthrottled → %.1f mV with 1-op/cycle FP throttle (×%.2f)\n\n",
		off.MaxDroopV*1e3, on.MaxDroopV*1e3, on.MaxDroopV/off.MaxDroopV)

	// 2. Re-run AUDIT with the throttle enabled during generation. The
	// GA can no longer lean on dense FP issue, so it searches for other
	// high-di/dt paths (§5.B: "AUDIT was able to generate a stressmark
	// that works around the FPU throttling restrictions").
	fmt.Println("regenerating with the throttle enabled (A-Res-Th)...")
	smTh, err := audit.Generate(audit.Options{
		Platform:   plat,
		Threads:    4,
		LoopCycles: period,
		FPThrottle: 1,
		GA: audit.GAConfig{
			PopSize: 12, Elites: 2, TournamentK: 3,
			MutationProb: 0.6, MaxGenerations: 10, StagnantLimit: 5, Seed: 7,
		},
		Seed: 7,
		Name: "A-Res-Th",
	})
	if err != nil {
		log.Fatal(err)
	}
	th := measure(smTh.Program, 1)

	fmt.Println(report.BarChart("4T droop under the throttle (mV)",
		[]string{"SM-Res (hand, throttled)", "A-Res-Th (regenerated)", "SM-Res (unthrottled)"},
		[]float64{on.MaxDroopV * 1e3, th.MaxDroopV * 1e3, off.MaxDroopV * 1e3}, 40))

	fmt.Printf("A-Res-Th recovers %.0f%% of the unthrottled droop while obeying the throttle;\n",
		100*th.MaxDroopV/off.MaxDroopV)
	fmt.Println("its instruction mix shows where the new stress path lives:")
	mix := smTh.Program.InstructionMix()
	for class, n := range mix {
		if n > 4 {
			fmt.Printf("  %-8v × %d\n", class, n)
		}
	}
	fmt.Printf("FP fraction: %.0f%% (a dense-FP mark would be ~50%%)\n", 100*smTh.Program.FPFraction())
}
