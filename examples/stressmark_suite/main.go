// Stressmark suite: §5.A.6's closing recommendation, automated. One
// stressmark is never enough — "a stressmark that works well for one
// configuration (such as A-Res for 4T runs) may not produce the best
// results for other configurations" — so AUDIT is cheap enough to run
// once per usage scenario and keep the whole suite.
//
//	go run ./examples/stressmark_suite
//
// The example generates the default scenario matrix (1T/4T/8T resonant,
// 4T excitation, 4T throttled), cross-measures every mark against every
// thread count, and prints the resulting coverage matrix: each column's
// winner is the mark trained for that configuration.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/audit"
	"repro/internal/report"
)

func main() {
	plat := audit.BulldozerPlatform()
	scenarios := audit.DefaultSuite(plat)
	fmt.Printf("generating %d stressmarks for %s:\n", len(scenarios), plat.Chip.Name)
	for _, sc := range scenarios {
		fmt.Printf("  %-18s %dT %-10v throttle=%d\n", sc.Name, sc.Threads, sc.Mode, sc.FPThrottle)
	}
	fmt.Println()

	marks, err := audit.GenerateSuite(plat, scenarios, audit.Options{
		LoopCycles: 36,
		GA: audit.GAConfig{
			PopSize: 10, Elites: 2, TournamentK: 3,
			MutationProb: 0.6, MaxGenerations: 8, StagnantLimit: 4,
		},
		Seed: 77,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Cross-measure: every mark at every thread count (unthrottled), to
	// show that each configuration's winner is the mark trained for it.
	counts := []int{1, 4, 8}
	tbl := &report.Table{
		Title:   "droop (mV) of each suite mark across configurations",
		Headers: []string{"mark (trained for)", "1T", "4T", "8T"},
	}
	best := map[int]string{}
	bestV := map[int]float64{}
	for _, sm := range marks {
		row := []string{fmt.Sprintf("%s (%dT)", sm.Name, sm.Threads)}
		for _, n := range counts {
			m, err := audit.MeasureDroop(plat, sm.Program, n)
			if err != nil {
				log.Fatal(err)
			}
			row = append(row, report.F(m.MaxDroopV*1e3, 1))
			if m.MaxDroopV > bestV[n] {
				bestV[n], best[n] = m.MaxDroopV, sm.Name
			}
		}
		tbl.AddRow(row...)
	}
	fmt.Println(tbl)
	for _, n := range counts {
		fmt.Printf("%dT worst case: %s (%.1f mV)\n", n, best[n], bestV[n]*1e3)
	}

	// Persist the suite: checkpoints are resumable and the programs are
	// plain assembly.
	dir, err := os.MkdirTemp("", "audit-suite-")
	if err != nil {
		log.Fatal(err)
	}
	for _, sm := range marks {
		// Atomic write: a crash mid-save never leaves a torn checkpoint.
		if err := sm.SaveFile(fmt.Sprintf("%s/%s.json", dir, sm.Name)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("\nsuite checkpoints written to %s\n", dir)
}
