// Porting to a different processor: the §5.C / Table 3 scenario. The
// board keeps its PDN, but the processor is swapped for an older
// 45 nm Phenom-II-style part: no FMA, no SMT, different caches, a
// different resonance, and less aggressive power gating. AUDIT adapts
// automatically — re-detect the resonance, regenerate, done — while
// the legacy SM1 stressmark won't even run (incompatible instructions).
//
//	go run ./examples/port_phenom
package main

import (
	"fmt"
	"log"

	"repro/audit"
	"repro/internal/report"
	"repro/internal/workloads"
)

func main() {
	old := audit.BulldozerPlatform()
	ph := audit.PhenomPlatform()
	fmt.Printf("old platform: %s  (first droop ≈ %.0f MHz)\n", old.Chip.Name, old.PDN.FirstDroopNominal()/1e6)
	fmt.Printf("new platform: %s  (first droop ≈ %.0f MHz, no FMA, no SMT)\n\n",
		ph.Chip.Name, ph.PDN.FirstDroopNominal()/1e6)

	// Step 1: the legacy stressmark does not even run.
	sm1 := workloads.SM1(36)
	if _, err := audit.MeasureDroop(ph, sm1, 4); err != nil {
		fmt.Printf("SM1 on %s: %v\n", ph.Chip.Name, err)
		fmt.Println("(§5.C: \"We were unable to run SM1 on the older processor due to incompatible instructions.\")")
	} else {
		log.Fatal("SM1 unexpectedly ran on the FMA-less chip")
	}

	// Step 2: AUDIT re-detects the resonance of the new system.
	fmt.Println("\nre-detecting the resonance on the new system...")
	sweep := audit.ResonanceSweep{Platform: ph}
	_, best, err := sweep.Run(14, 48, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("worst-case loop: %d cycles (%.1f MHz — the die stage changed with the processor)\n\n",
		best.LoopCycles, best.FreqHz/1e6)

	// Step 3: regenerate. The opcode list automatically drops FMA for
	// this chip.
	sm, err := audit.Generate(audit.Options{
		Platform:   ph,
		Threads:    4,
		LoopCycles: best.LoopCycles,
		GA: audit.GAConfig{
			PopSize: 12, Elites: 2, TournamentK: 3,
			MutationProb: 0.6, MaxGenerations: 8, StagnantLimit: 5, Seed: 23,
		},
		Seed: 23,
		Name: "A-Res-phenom",
	})
	if err != nil {
		log.Fatal(err)
	}

	// Step 4: Table 3 — compare against what still runs.
	zeusmp := mustBenchmark("zeusmp")
	sm2 := workloads.SM2(best.LoopCycles)
	rows := []struct {
		name string
		prog *audit.Program
	}{
		{"zeusmp", zeusmp},
		{"SM2", sm2},
		{"A-Res (regenerated)", sm.Program},
	}
	var droops []float64
	var labels []string
	var sm2Droop float64
	for _, r := range rows {
		m, err := audit.MeasureDroop(ph, r.prog, 4)
		if err != nil {
			log.Fatal(err)
		}
		droops = append(droops, m.MaxDroopV*1e3)
		labels = append(labels, r.name)
		if r.name == "SM2" {
			sm2Droop = m.MaxDroopV
		}
	}
	fmt.Println(report.BarChart("4T droop on the Phenom-style system (mV)", labels, droops, 40))
	tbl := &report.Table{Title: "relative to SM2 (Table 3)", Headers: []string{"program", "rel. droop"}}
	for i, r := range rows {
		tbl.AddRow(r.name, report.F(droops[i]/1e3/sm2Droop, 2))
	}
	tbl.AddRow("SM1", "incompatible")
	fmt.Println(tbl)
	fmt.Println("paper's Table 3: zeusmp 0.82, SM2 1.00, A-Res 1.10 — same ordering.")
}

func mustBenchmark(name string) *audit.Program {
	for _, w := range audit.Benchmarks() {
		if w.Name == name {
			return w.Program
		}
	}
	log.Fatalf("no benchmark %q", name)
	return nil
}
