// Quickstart: generate a di/dt stressmark for the default platform and
// see what it does to the supply voltage.
//
//	go run ./examples/quickstart
//
// The flow below is the whole AUDIT loop from the paper's Fig. 5:
// detect the resonance, let the genetic search maximise measured droop,
// then characterise the winner — droop, droop events, and the voltage
// at which the part stops meeting timing.
package main

import (
	"fmt"
	"log"

	"repro/audit"
)

func main() {
	// A Platform bundles the cycle-level chip model, the power model,
	// the RLC power-delivery network and the failure model — the
	// simulated stand-in for the paper's lab bench.
	plat := audit.BulldozerPlatform()
	fmt.Printf("platform: %s @ %.1f GHz, nominal %.2f V, first droop ≈ %.0f MHz\n\n",
		plat.Chip.Name, plat.Chip.ClockHz/1e9, plat.Nominal(),
		plat.PDN.FirstDroopNominal()/1e6)

	// Generate a resonant stressmark for four threads (one per module).
	// LoopCycles: 0 would auto-detect the resonance with a sweep; we
	// pass the known value to keep the example fast.
	sm, err := audit.Generate(audit.Options{
		Platform:   plat,
		Threads:    4,
		Mode:       audit.Resonance,
		LoopCycles: 36,
		GA: audit.GAConfig{
			PopSize: 10, Elites: 2, TournamentK: 3,
			MutationProb: 0.6, MaxGenerations: 6, StagnantLimit: 4, Seed: 42,
		},
		Seed: 42,
		Name: "quickstart-res",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %q: %d-cycle loop, %d GA evaluations, best droop %.1f mV\n",
		sm.Name, sm.LoopCycles, sm.Search.Evaluations, sm.DroopV*1e3)

	// Measure it properly (longer run than the GA's quick fitness runs).
	m, err := audit.MeasureDroop(plat, sm.Program, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("measured: droop %.1f mV, overshoot %.1f mV, avg power %.1f W\n",
		m.MaxDroopV*1e3, m.MaxOvershootV*1e3, m.AvgPowerW)

	// Compare with a standard benchmark.
	zeusmp := mustBenchmark("zeusmp")
	mb, err := audit.MeasureDroop(plat, zeusmp, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("zeusmp:   droop %.1f mV — the stressmark droops %.1f× more\n",
		mb.MaxDroopV*1e3, m.MaxDroopV/mb.MaxDroopV)

	// The ultimate test (§5.A.4): lower the supply in 12.5 mV steps
	// until the exercised critical paths miss timing.
	v, ok, err := audit.FindFailureVoltage(plat, sm.Program, 4)
	if err != nil {
		log.Fatal(err)
	}
	if ok {
		fmt.Printf("failure:  the stressmark kills the part at %.4f V (%.0f mV of margin consumed)\n",
			v, (v-(plat.Nominal()-0.3))*1e3)
	}

	fmt.Println("\nfirst lines of the generated stressmark:")
	text := sm.Program.Text()
	for i, line := 0, 0; i < len(text) && line < 12; i++ {
		fmt.Print(string(text[i]))
		if text[i] == '\n' {
			line++
		}
	}
	fmt.Println("...")
}

func mustBenchmark(name string) *audit.Program {
	for _, w := range audit.Benchmarks() {
		if w.Name == name {
			return w.Program
		}
	}
	log.Fatalf("no benchmark %q", name)
	return nil
}
