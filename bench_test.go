// The benchmark harness: one testing.B per table and figure of the
// paper's evaluation. Each bench runs the corresponding experiment on
// the simulated testbed and prints the same rows/series the paper
// reports, alongside the paper's values where they are quantitative.
// Absolute millivolts differ from the authors' silicon (the substrate
// here is a simulator); the orderings, ratios and crossovers are the
// reproduction targets (see EXPERIMENTS.md).
//
//	go test -bench=. -benchtime=1x .
package repro

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/experiments"
	"repro/internal/report"
	"repro/internal/trace"
)

var (
	labOnce sync.Once
	lab     *experiments.Lab
)

func getLab() *experiments.Lab {
	labOnce.Do(func() { lab = experiments.NewLab() })
	return lab
}

// printOnce guards a bench's output so ramped-up b.N repeats stay quiet.
func printOnce(i int, f func()) {
	if i == 0 {
		f()
	}
}

func BenchmarkFig3_ResonanceSpectrum(b *testing.B) {
	l := getLab()
	for i := 0; i < b.N; i++ {
		res, err := l.Fig3()
		if err != nil {
			b.Fatal(err)
		}
		printOnce(i, func() {
			tbl := &report.Table{
				Title:   "Fig. 3 — PDN impedance peaks (paper: three droop orders, first dominates)",
				Headers: []string{"order", "freq", "|Z| (mΩ)"},
			}
			for _, p := range res.Peaks {
				tbl.AddRow(fmt.Sprintf("droop %d", p.Order),
					fmt.Sprintf("%.4g Hz", p.FreqHz), report.F(p.ZOhms*1e3, 3))
			}
			fmt.Println(tbl)
			droop := trace.WorstDroop(res.StepWave, res.StepWave[0])
			fmt.Printf("15 A step response: first-droop ring of %.1f mV (time domain, Fig. 3 right)\n\n", droop*1e3)
		})
	}
}

func BenchmarkFig4_ExcitationVsResonance(b *testing.B) {
	l := getLab()
	for i := 0; i < b.N; i++ {
		res, err := l.Fig4()
		if err != nil {
			b.Fatal(err)
		}
		printOnce(i, func() {
			fmt.Println(report.BarChart(
				"Fig. 4 — first droop excitation vs first droop resonance (mV)",
				[]string{"excitation (single event)", "resonance (periodic)"},
				[]float64{res.ExcitationDroopV * 1e3, res.ResonanceDroopV * 1e3}, 40))
			fmt.Printf("resonance builds %.2f× the excitation droop (paper: resonant droops \"grow to high amplitudes\")\n\n",
				res.ResonanceDroopV/res.ExcitationDroopV)
		})
	}
}

func BenchmarkFig6_NaturalDithering(b *testing.B) {
	l := getLab()
	for i := 0; i < b.N; i++ {
		res, err := l.Fig6()
		if err != nil {
			b.Fatal(err)
		}
		printOnce(i, func() {
			labels := make([]string, len(res.WindowDroopV))
			vals := make([]float64, len(res.WindowDroopV))
			for w := range res.WindowDroopV {
				labels[w] = fmt.Sprintf("tick window %02d", w)
				vals[w] = res.WindowDroopV[w] * 1e3
			}
			fmt.Println(report.BarChart(
				"Fig. 6 — natural dithering: worst droop per OS-tick window (mV)",
				labels, vals, 40))
			fmt.Printf("droop envelope varies %.1f mV across windows (%d ticks) — alignment drifts with OS interference, as in the scope shot\n\n",
				res.Spread*1e3, res.Ticks)
		})
	}
}

func BenchmarkFig9a_Benchmarks(b *testing.B) {
	l := getLab()
	for i := 0; i < b.N; i++ {
		rows, ref, err := l.Fig9Benchmarks()
		if err != nil {
			b.Fatal(err)
		}
		printOnce(i, func() {
			tbl := &report.Table{
				Title:   fmt.Sprintf("Fig. 9(a) — droop relative to 4T SM1 (= %.1f mV)", ref*1e3),
				Headers: []string{"benchmark", "suite", "1T", "2T", "4T", "8T"},
			}
			for _, r := range rows {
				tbl.AddRow(r.Name, r.Suite,
					report.F(r.Rel[1], 2), report.F(r.Rel[2], 2),
					report.F(r.Rel[4], 2), report.F(r.Rel[8], 2))
			}
			fmt.Println(tbl)
			fmt.Println("paper shape: droop grows 1T→2T→4T; all benchmarks below the SM1 reference;")
			fmt.Println("zeusmp and swaptions are the droopiest standard benchmarks.")
			fmt.Println()
		})
	}
}

func BenchmarkFig9b_Stressmarks(b *testing.B) {
	l := getLab()
	for i := 0; i < b.N; i++ {
		rows, ref, err := l.Fig9Stressmarks()
		if err != nil {
			b.Fatal(err)
		}
		printOnce(i, func() {
			tbl := &report.Table{
				Title:   fmt.Sprintf("Fig. 9(b) — stressmark droop relative to 4T SM1 (= %.1f mV)", ref*1e3),
				Headers: []string{"stressmark", "1T", "2T", "4T", "8T"},
			}
			for _, r := range rows {
				tbl.AddRow(r.Name,
					report.F(r.Rel[1], 2), report.F(r.Rel[2], 2),
					report.F(r.Rel[4], 2), report.F(r.Rel[8], 2))
			}
			fmt.Println(tbl)
			fmt.Println("paper shape: resonant marks (A-Res, SM-Res) dominate at 4T; 8T falls below 4T")
			fmt.Println("for 4T-trained marks (shared FPU); A-Res-8T wins at 8T but trails at 1–4T.")
			fmt.Println()
		})
	}
}

func BenchmarkFig10_DroopHistograms(b *testing.B) {
	l := getLab()
	for i := 0; i < b.N; i++ {
		res, err := l.Fig10()
		if err != nil {
			b.Fatal(err)
		}
		printOnce(i, func() {
			for _, r := range res {
				centers := make([]float64, len(r.Hist.Counts))
				for j := range centers {
					centers[j] = r.Hist.BinCenter(j)
				}
				fmt.Println(report.Histogram(
					fmt.Sprintf("Fig. 10 — Vdd histogram: %s (%d samples, %d droop events, worst %.1f mV)",
						r.Name, r.Hist.Total(), r.DroopEvents, r.MaxDroopV*1e3),
					centers, r.Hist.Counts, 20, 40))
			}
			fmt.Println("paper shape: zeusmp = least variation; SM1 = nominal peak with long tails;")
			fmt.Println("A-Res = most events near the worst-case droop.")
			fmt.Println()
		})
	}
}

func BenchmarkTable1_VoltageAtFailure(b *testing.B) {
	l := getLab()
	paper := map[string]string{
		"A-Res": "VF", "SM-Res": "VF − 12 mV", "SM1": "VF − 62 mV",
		"A-Ex": "VF − 75 mV", "SM2": "VF − 87 mV",
		"zeusmp": "VF − 125 mV", "swaptions": "VF − 125 mV",
	}
	for i := 0; i < b.N; i++ {
		rows, err := l.Table1()
		if err != nil {
			b.Fatal(err)
		}
		printOnce(i, func() {
			tbl := &report.Table{
				Title:   "Table 1 — voltage at failure relative to 4T A-Res",
				Headers: []string{"program", "measured", "droop (mV)", "paper"},
			}
			for _, r := range rows {
				rel := "VF"
				if r.DeltaMV > 0 {
					rel = fmt.Sprintf("VF − %.1f mV", r.DeltaMV)
				}
				tbl.AddRow(r.Name, rel, report.F(r.DroopV*1e3, 1), paper[r.Name])
			}
			fmt.Println(tbl)
			fmt.Println("paper shape: A-Res fails highest; SM2's failure point far exceeds benchmarks")
			fmt.Println("of comparable droop (it exercises sensitive paths); benchmarks fail last.")
			fmt.Println()
		})
	}
}

func BenchmarkTable2_FPUThrottling(b *testing.B) {
	l := getLab()
	paper := map[string]string{
		"SM1/off": "1.00", "A-Res/off": "1.39", "SM-Res/off": "1.25",
		"SM1/on": "0.93", "A-Res/on": "0.86", "SM-Res/on": "0.78", "A-Res-Th/on": "0.98",
	}
	for i := 0; i < b.N; i++ {
		rows, err := l.Table2()
		if err != nil {
			b.Fatal(err)
		}
		printOnce(i, func() {
			tbl := &report.Table{
				Title:   "Table 2 — FPU throttling: droop relative to unthrottled 4T SM1",
				Headers: []string{"stressmark", "throttle", "rel droop", "paper", "fails at (V)"},
			}
			for _, r := range rows {
				mode, key := "off", r.Name+"/off"
				if r.Throttled {
					mode, key = "on", r.Name+"/on"
				}
				tbl.AddRow(r.Name, mode, report.F(r.RelDroop, 2), paper[key], report.F(r.VFail, 4))
			}
			fmt.Println(tbl)
			fmt.Println("paper shape: throttling cuts the resonant FP marks hardest; A-Res-Th (regenerated")
			fmt.Println("under the throttle) recovers most of the droop but not the unthrottled level.")
			fmt.Println()
		})
	}
}

func BenchmarkTable3_Phenom(b *testing.B) {
	l := getLab()
	paper := map[string]string{"zeusmp": "0.82", "SM2": "1.00", "A-Res": "1.10", "SM1": "n/a (incompatible)"}
	for i := 0; i < b.N; i++ {
		rows, err := l.Table3()
		if err != nil {
			b.Fatal(err)
		}
		printOnce(i, func() {
			tbl := &report.Table{
				Title:   "Table 3 — 45 nm Phenom-style system, droop relative to SM2",
				Headers: []string{"program", "measured", "paper", "fails at (V)"},
			}
			for _, r := range rows {
				if r.Incompatible {
					tbl.AddRow(r.Name, "incompatible", paper[r.Name], "-")
					continue
				}
				tbl.AddRow(r.Name, report.F(r.RelDroop, 2), paper[r.Name], report.F(r.VFail, 4))
			}
			fmt.Println(tbl)
			fmt.Println("paper shape: AUDIT regenerates for the new processor and beats the hand marks;")
			fmt.Println("SM1 cannot run (FMA missing on the older part).")
			fmt.Println()
		})
	}
}

func BenchmarkDithering_SearchCost(b *testing.B) {
	l := getLab()
	paper := map[string]string{"4/0": "3.3 ms", "8/0": "18.35 min", "8/3": "67 ms"}
	for i := 0; i < b.N; i++ {
		rows := l.DitherCost()
		demo, err := l.DitherDemo()
		if err != nil {
			b.Fatal(err)
		}
		printOnce(i, func() {
			tbl := &report.Table{
				Title:   "§3.B — alignment sweep cost (4 GHz, L+H=24, M=960)",
				Headers: []string{"cores", "δ", "measured", "paper"},
			}
			for _, r := range rows {
				tbl.AddRow(fmt.Sprint(r.Cores), fmt.Sprint(r.Delta),
					fmtSeconds(r.Seconds), paper[fmt.Sprintf("%d/%d", r.Cores, r.Delta)])
			}
			fmt.Println(tbl)
			fmt.Printf("executed demo (scaled M): aligned %.1f mV, anti-phase %.1f mV, dithered %.1f mV\n",
				demo.AlignedDroopV*1e3, demo.MisalignedDroopV*1e3, demo.DitheredDroopV*1e3)
			fmt.Println("dithering recovers the worst case from arbitrary skew, as §3.B guarantees.")
			fmt.Println()
		})
	}
}

func BenchmarkHierarchical_VsFlat(b *testing.B) {
	l := getLab()
	for i := 0; i < b.N; i++ {
		res, err := l.HierarchicalVsFlat()
		if err != nil {
			b.Fatal(err)
		}
		printOnce(i, func() {
			fmt.Println(report.BarChart(
				"§3.C — hierarchical sub-blocking vs flat genome at equal GA budget (mV)",
				[]string{
					fmt.Sprintf("flat genome        (%d evals)", res.FlatEvals),
					fmt.Sprintf("hierarchical (K=6) (%d evals)", res.HierEvals),
				},
				[]float64{res.FlatDroopV * 1e3, res.HierDroopV * 1e3}, 40))
			fmt.Printf("sub-blocking wins by %.1f%% (paper: \"19%% higher droop in less than five hours\n", res.ImprovementPct)
			fmt.Println("compared to a 30-hour run without hierarchical generation\")")
			fmt.Println()
		})
	}
}

func BenchmarkNOPAblation(b *testing.B) {
	l := getLab()
	for i := 0; i < b.N; i++ {
		res, err := l.NOPAblation()
		if err != nil {
			b.Fatal(err)
		}
		printOnce(i, func() {
			tbl := &report.Table{
				Title:   "§5.A.5 — replacing A-Res's HP-region NOPs with independent ADDs",
				Headers: []string{"variant", "droop (mV)", "di/dt freq (MHz)"},
			}
			tbl.AddRow("A-Res (original)", report.F(res.OriginalDroopV*1e3, 2), report.F(res.OriginalFreqHz/1e6, 1))
			tbl.AddRow(fmt.Sprintf("A-Res with %d NOPs→ADDs", res.NopSlots),
				report.F(res.ModifiedDroopV*1e3, 2), report.F(res.ModifiedFreqHz/1e6, 1))
			fmt.Println(tbl)
			fmt.Println("paper shape: the ADD variant droops less and its frequency shifts below the")
			fmt.Println("resonance — the loop stretched; NOPs cost fetch/decode only, ADDs hit the ALU.")
			fmt.Println()
		})
	}
}

func BenchmarkResonanceSweep(b *testing.B) {
	l := getLab()
	for i := 0; i < b.N; i++ {
		loop, err := l.LoopCycles(l.BD)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(i, func() {
			fmt.Printf("§3 — automatic resonance detection: worst-case loop = %d cycles (%.1f MHz);\n",
				loop, l.BD.Chip.ClockHz/float64(loop)/1e6)
			fmt.Printf("the PDN's analytic first droop is %.1f MHz — detected from software alone.\n\n",
				l.BD.PDN.FirstDroopNominal()/1e6)
		})
	}
}

func BenchmarkBarrierStressmark(b *testing.B) {
	l := getLab()
	for i := 0; i < b.N; i++ {
		res, err := l.Barrier()
		if err != nil {
			b.Fatal(err)
		}
		printOnce(i, func() {
			fmt.Println(report.BarChart(
				"§5.A.1 — barrier stressmark vs ideal alignment (4T, mV)",
				[]string{"barrier-synchronised virus", "ideally aligned virus"},
				[]float64{res.BarrierDroopV * 1e3, res.AlignedDroopV * 1e3}, 40))
			fmt.Println("paper shape: the barrier droop \"was not significant\" — the release signal")
			fmt.Println("reaches each core at a different time, perturbing the burst onsets.")
			fmt.Println()
		})
	}
}

func fmtSeconds(s float64) string {
	switch {
	case s < 1:
		return fmt.Sprintf("%.1f ms", s*1e3)
	case s < 120:
		return fmt.Sprintf("%.2f s", s)
	default:
		return fmt.Sprintf("%.2f min", s/60)
	}
}

func BenchmarkDataToggleAblation(b *testing.B) {
	l := getLab()
	for i := 0; i < b.N; i++ {
		res, err := l.DataToggle()
		if err != nil {
			b.Fatal(err)
		}
		printOnce(i, func() {
			fmt.Println(report.BarChart(
				"§3 — operand data values: alternating max-toggle vs constant (mV)",
				[]string{"constant operands", "max-toggle operands (AUDIT's choice)"},
				[]float64{res.ConstantDroopV * 1e3, res.ToggledDroopV * 1e3}, 40))
			fmt.Printf("toggling is worth %.1f%% of the droop (paper: \"on the order of 10%%\")\n\n", res.ImpactPct)
		})
	}
}

func BenchmarkLPRegionChoice(b *testing.B) {
	l := getLab()
	for i := 0; i < b.N; i++ {
		res, err := l.LPRegion()
		if err != nil {
			b.Fatal(err)
		}
		printOnce(i, func() {
			fmt.Println(report.BarChart(
				"§3.C — low-power region filler (mV)",
				[]string{"dependent long-latency ops", "NOPs (AUDIT's choice)"},
				[]float64{res.DepOpDroopV * 1e3, res.NopDroopV * 1e3}, 40))
			fmt.Printf("delta %.1f%% — \"a sequence of NOPs produced comparable power values\"\n\n", res.DeltaPct)
		})
	}
}

func BenchmarkLoadLineMethodology(b *testing.B) {
	l := getLab()
	for i := 0; i < b.N; i++ {
		res, err := l.LoadLine()
		if err != nil {
			b.Fatal(err)
		}
		printOnce(i, func() {
			fmt.Println(report.BarChart(
				"measurement methodology — VRM load line (mV of apparent droop)",
				[]string{"load line disabled (paper's method)", "load line enabled"},
				[]float64{res.OffDroopV * 1e3, res.OnDroopV * 1e3}, 40))
			fmt.Printf("the load line inflates every reading by ≈%.1f mV of IR sag unrelated to di/dt —\n", res.ExtraMV)
			fmt.Println("why the paper measures with \"the load line of the VRM disabled\".")
			fmt.Println()
		})
	}
}

func BenchmarkDitherQuality(b *testing.B) {
	l := getLab()
	for i := 0; i < b.N; i++ {
		res, err := l.DitherQuality(3)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(i, func() {
			fmt.Printf("§3.B — approximate dithering quality: δ=%d alignment reaches %.1f mV of the\n",
				res.Delta, res.ApproxDroopV*1e3)
			fmt.Printf("exact %.1f mV (%.1f%% loss) while shrinking the 8-core sweep from 18.35 min to 67 ms\n\n",
				res.ExactDroopV*1e3, res.LossPct)
		})
	}
}

func BenchmarkPredictorAblation(b *testing.B) {
	l := getLab()
	for i := 0; i < b.N; i++ {
		res, err := l.Predictor()
		if err != nil {
			b.Fatal(err)
		}
		printOnce(i, func() {
			fmt.Printf("extension — branch predictor vs di/dt (4T perlbench-style kernel):\n")
			fmt.Printf("  static:  %6d mispredicts, droop %.1f mV\n", res.StaticMispredicts, res.StaticDroopV*1e3)
			fmt.Printf("  gshare:  %6d mispredicts, droop %.1f mV\n", res.GshareMispredicts, res.GshareDroopV*1e3)
			fmt.Println("fewer mispredict recoveries → steadier activity (§5.A.1 names pipeline")
			fmt.Println("recovery as a natural droop source).")
			fmt.Println()
		})
	}
}

func BenchmarkOperatingPoints(b *testing.B) {
	l := getLab()
	for i := 0; i < b.N; i++ {
		rows, err := l.OperatingPoints()
		if err != nil {
			b.Fatal(err)
		}
		printOnce(i, func() {
			tbl := &report.Table{
				Title:   "§3 — resonance re-detection across operating conditions",
				Headers: []string{"configuration", "clock", "PDN first droop", "detected loop", "detected"},
			}
			for _, r := range rows {
				tbl.AddRow(r.Name,
					fmt.Sprintf("%.1f GHz", r.ClockHz/1e9),
					fmt.Sprintf("%.1f MHz", r.FirstDroopHz/1e6),
					fmt.Sprintf("%d cyc", r.DetectedLoop),
					fmt.Sprintf("%.1f MHz", r.DetectedHz/1e6))
			}
			fmt.Println(tbl)
			fmt.Println("the detected loop tracks the physics: fewer cycles at a slower clock (same Hz),")
			fmt.Println("more cycles on a board whose resonance moved down.")
			fmt.Println()
		})
	}
}

func BenchmarkCoScheduling(b *testing.B) {
	l := getLab()
	for i := 0; i < b.N; i++ {
		res, err := l.CoSchedule()
		if err != nil {
			b.Fatal(err)
		}
		printOnce(i, func() {
			fmt.Println(report.BarChart(
				"related work [23] — co-scheduling interference (2 modules, mV)",
				[]string{"SM-Res + mcf (noise-aware pairing)", "SM-Res + SM-Res (constructive)"},
				[]float64{res.MixedDroopV * 1e3, res.TwoFPDroopV * 1e3}, 40))
			fmt.Printf("pairing the resonant thread with a quiet one cuts the droop %.0f%% —\n", res.ReductionPct)
			fmt.Println("the effect behind Reddi et al.'s noise-aware thread scheduler.")
			fmt.Println()
		})
	}
}

func BenchmarkHeterogeneous8T(b *testing.B) {
	l := getLab()
	for i := 0; i < b.N; i++ {
		res, err := l.Hetero8T()
		if err != nil {
			b.Fatal(err)
		}
		printOnce(i, func() {
			fmt.Println(report.BarChart(
				"extension — 8T generation: homogeneous (paper) vs heterogeneous threads (mV)",
				[]string{"A-Res-8T (homogeneous)", "hetero (siblings may specialise)"},
				[]float64{res.HomoDroopV * 1e3, res.HeteroDroopV * 1e3}, 40))
			fmt.Printf("heterogeneous siblings change the droop by %+.1f%% by negotiating the shared FPU\n\n", res.GainPct)
		})
	}
}

func BenchmarkFaultRobustness(b *testing.B) {
	l := getLab()
	for i := 0; i < b.N; i++ {
		res, err := l.FaultRobustness()
		if err != nil {
			b.Fatal(err)
		}
		printOnce(i, func() {
			fmt.Println(report.BarChart(
				"robustness — A-Res search on a clean vs fault-injected testbed (mV, re-measured clean)",
				[]string{
					"clean testbed",
					fmt.Sprintf("lab faults (%.0f%% loss)", res.TransientRate*100),
				},
				[]float64{res.CleanDroopV * 1e3, res.FaultyDroopV * 1e3}, 40))
			fmt.Printf("injected: %d/%d runs lost, %d throttled, %d skewed; search recovered with %d retries, %d degraded\n",
				res.Injected.Transients, res.Injected.Runs, res.Injected.Throttled,
				res.Injected.Skewed, res.Retries, res.Degraded)
			fmt.Printf("search quality cost: %.1f%% — the closed loop converges despite lab nuisances,\n", res.DeltaPct)
			fmt.Println("as the paper's 5–30 h hardware campaigns did")
			fmt.Println()
		})
	}
}
