// Command resonance characterises a platform's power-delivery network:
// the AC impedance sweep with its first/second/third droop peaks
// (Fig. 3) and AUDIT's software-side resonance detection — the
// HP/NOP loop-length sweep of §3.
//
// Usage:
//
//	resonance [-platform bulldozer|phenom] [-sweep]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/audit"
	"repro/internal/pdn"
	"repro/internal/report"
)

func main() {
	var (
		platform = flag.String("platform", "bulldozer", "bulldozer or phenom")
		doSweep  = flag.Bool("sweep", true, "also run the software loop-length sweep")
	)
	flag.Parse()
	if err := run(*platform, *doSweep); err != nil {
		fmt.Fprintln(os.Stderr, "resonance:", err)
		os.Exit(1)
	}
}

func run(platform string, doSweep bool) error {
	var plat audit.Platform
	switch platform {
	case "bulldozer":
		plat = audit.BulldozerPlatform()
	case "phenom":
		plat = audit.PhenomPlatform()
	default:
		return fmt.Errorf("unknown platform %q", platform)
	}

	peaks, err := pdn.FindResonances(plat.PDN, 3e3, 1e9, 1200)
	if err != nil {
		return err
	}
	tbl := &report.Table{
		Title:   fmt.Sprintf("PDN impedance peaks — %s", plat.PDN.Name),
		Headers: []string{"order", "frequency", "|Z|"},
	}
	names := map[int]string{1: "first droop", 2: "second droop", 3: "third droop"}
	for _, p := range peaks {
		label := names[p.Order]
		if label == "" {
			label = fmt.Sprintf("order %d", p.Order)
		}
		tbl.AddRow(label, fmtFreq(p.FreqHz), fmt.Sprintf("%.3f mΩ", p.ZOhms*1e3))
	}
	fmt.Println(tbl)
	fmt.Printf("analytic first droop: %s (die stage L=%.3g H, C=%.3g F)\n\n",
		fmtFreq(plat.PDN.FirstDroopNominal()), plat.PDN.LDie, plat.PDN.CDie)

	if !doSweep {
		return nil
	}
	fmt.Println("software resonance detection (HP/NOP loop-length sweep):")
	sweep := audit.ResonanceSweep{Platform: plat}
	pts, best, err := sweep.Run(16, 64, 2)
	if err != nil {
		return err
	}
	labels := make([]string, len(pts))
	vals := make([]float64, len(pts))
	for i, p := range pts {
		labels[i] = fmt.Sprintf("%2d cyc (%5.1f MHz)", p.LoopCycles, p.FreqHz/1e6)
		vals[i] = p.DroopV * 1e3
	}
	fmt.Println(report.BarChart("droop by loop length (mV)", labels, vals, 40))
	fmt.Printf("worst-case loop: %d cycles → %s excites the first droop\n",
		best.LoopCycles, fmtFreq(best.FreqHz))
	return nil
}

func fmtFreq(hz float64) string {
	switch {
	case hz >= 1e6:
		return fmt.Sprintf("%.1f MHz", hz/1e6)
	case hz >= 1e3:
		return fmt.Sprintf("%.1f kHz", hz/1e3)
	default:
		return fmt.Sprintf("%.1f Hz", hz)
	}
}
