// Command droopscope runs a workload on the simulated testbed and
// reports its voltage-droop characteristics: worst droop/overshoot,
// droop-event counts, an ASCII Vdd histogram (the Fig. 10 view), and
// optionally the voltage-at-failure point (the Table 1 procedure).
//
// Usage:
//
//	droopscope [flags] <workload>
//
// where <workload> is a benchmark name (zeusmp, swaptions, mcf, …; see
// -list), a stressmark (SM1, SM2, SM-Res), or an assembly file
// produced by cmd/audit (-f).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/audit"
	"repro/internal/report"
	"repro/internal/scope"
	"repro/internal/testbed"
	"repro/internal/workloads"
)

func main() {
	var (
		platform = flag.String("platform", "bulldozer", "bulldozer or phenom")
		threads  = flag.Int("threads", 4, "thread count (spread across modules)")
		cycles   = flag.Uint64("cycles", 100000, "measured cycles")
		file     = flag.String("f", "", "assembly file to run instead of a named workload")
		failure  = flag.Bool("failure", false, "also search for the voltage-at-failure point")
		throttle = flag.Int("throttle", 0, "FP throttle limit")
		stats    = flag.Bool("stats", false, "print pipeline and cache statistics")
		list     = flag.Bool("list", false, "list available workloads and exit")
	)
	flag.Parse()
	if *list {
		for _, w := range workloads.All() {
			fmt.Printf("%-14s (%s)\n", w.Name, w.Suite)
		}
		fmt.Println("SM1, SM2, SM-Res  (manual stressmarks)")
		return
	}
	if err := run(*platform, *threads, *cycles, *file, *failure, *throttle, *stats, flag.Arg(0)); err != nil {
		fmt.Fprintln(os.Stderr, "droopscope:", err)
		os.Exit(1)
	}
}

func resolve(name, file string) (*audit.Program, error) {
	if file != "" {
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		return audit.ParseProgram(string(src))
	}
	switch name {
	case "":
		return nil, fmt.Errorf("need a workload name or -f file (try -list)")
	case "SM1":
		return workloads.SM1(workloads.DefaultLoopCycles), nil
	case "SM2":
		return workloads.SM2(workloads.DefaultLoopCycles), nil
	case "SM-Res":
		return workloads.SMRes(workloads.DefaultLoopCycles), nil
	}
	w, err := workloads.ByName(name)
	if err != nil {
		return nil, err
	}
	return w.Program, nil
}

func run(platform string, threads int, cycles uint64, file string, failure bool, throttle int, stats bool, name string) error {
	var plat audit.Platform
	switch platform {
	case "bulldozer":
		plat = audit.BulldozerPlatform()
	case "phenom":
		plat = audit.PhenomPlatform()
	default:
		return fmt.Errorf("unknown platform %q", platform)
	}
	prog, err := resolve(name, file)
	if err != nil {
		return err
	}
	nom := plat.Nominal()
	hist, err := scope.NewHistogram(nom-0.2, nom+0.12, 64)
	if err != nil {
		return err
	}
	specs, err := testbed.SpreadPlacement(plat.Chip, prog, threads)
	if err != nil {
		return err
	}
	m, err := plat.Run(testbed.RunConfig{
		Threads:          specs,
		MaxCycles:        3000 + cycles,
		WarmupCycles:     3000,
		FPThrottle:       throttle,
		Histogram:        hist,
		TriggerThreshold: nom - 0.02,
	})
	if err != nil {
		return err
	}
	fmt.Printf("workload    : %s (%dT on %s)\n", prog.Name, threads, plat.Chip.Name)
	fmt.Printf("cycles      : %d   instructions: %d   IPC: %.2f\n",
		m.Cycles, m.Retired, float64(m.Retired)/float64(m.Cycles))
	fmt.Printf("avg power   : %.1f W\n", m.AvgPowerW)
	fmt.Printf("worst droop : %s (%.1f%% of nominal)\n", report.MilliVolts(m.MaxDroopV), 100*m.MaxDroopV/nom)
	fmt.Printf("overshoot   : %s\n", report.MilliVolts(m.MaxOvershootV))
	fmt.Printf("droop events: %d below %s\n", m.DroopEvents, report.MilliVolts(0.02))

	if stats {
		rate := func(h, miss uint64) float64 {
			if h+miss == 0 {
				return 0
			}
			return 100 * float64(h) / float64(h+miss)
		}
		fmt.Printf("branches    : %d (%.2f%% mispredicted)\n", m.Branches,
			100*float64(m.Mispredicts)/float64(max(m.Branches, 1)))
		fmt.Printf("cache hits  : L1 %.1f%%  L2 %.1f%%  L3 %.1f%%\n",
			rate(m.L1Hits, m.L1Misses), rate(m.L2Hits, m.L2Misses), rate(m.L3Hits, m.L3Misses))
	}

	centers := make([]float64, len(hist.Counts))
	for i := range centers {
		centers[i] = hist.BinCenter(i)
	}
	fmt.Println(report.Histogram("Vdd distribution (V)", centers, hist.Counts, 24, 40))

	if failure {
		rc := testbed.RunConfig{
			Threads:      specs,
			MaxCycles:    25000,
			WarmupCycles: 3000,
			FPThrottle:   throttle,
		}
		v, ok, err := plat.FindFailureVoltage(rc, nom-0.3)
		if err != nil {
			return err
		}
		if ok {
			fmt.Printf("fails at    : %.4f V (nominal − %s)\n", v, report.MilliVolts(nom-v))
		} else {
			fmt.Printf("no failure above %.4f V\n", nom-0.3)
		}
	}
	return nil
}
