// Command corpus manages the versioned stressmark corpus: a
// file-per-entry database of discovered stressmarks with baselined
// measurements, replayed in CI to catch unexplained result drift.
//
// Usage:
//
//	corpus ls    -db <dir>
//	corpus add   -db <dir> -platform <name> [flags] <stressmark.json>...
//	corpus run   -db <dir> [-lanes N] [-workers N] [-skip-failure] [-rom-tol V] [-v]
//	corpus redux -db <dir> [-skip-failure]
//
// add harvests saved stressmarks (cmd/audit -save files) into baselined
// entries. run replays every entry and exits nonzero unless all pass:
// DRIFT means the platform description is unchanged but results moved —
// some code path altered the numbers, which is exactly what the corpus
// exists to catch. platform-skew means the platform description itself
// changed; if that was intentional, redux re-baselines every entry
// in place (same files, new expectations and digests).
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/report"
	"repro/internal/testbed"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "ls":
		err = cmdLs(os.Args[2:])
	case "add":
		err = cmdAdd(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	case "redux":
		err = cmdRedux(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "corpus: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "corpus:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  corpus ls    -db <dir>                                 list entries
  corpus add   -db <dir> -platform <name> <sm.json>...   harvest saved stressmarks
  corpus run   -db <dir> [-skip-failure] [-v]            replay and verify
  corpus redux -db <dir> [-skip-failure]                 re-baseline in place`)
}

func openDB(dir string) (*corpus.DB, error) {
	if dir == "" {
		return nil, fmt.Errorf("-db is required")
	}
	return corpus.Open(dir)
}

func cmdLs(args []string) error {
	fs := flag.NewFlagSet("ls", flag.ExitOnError)
	dir := fs.String("db", "", "corpus directory")
	fs.Parse(args)
	db, err := openDB(*dir)
	if err != nil {
		return err
	}
	entries, err := db.Load()
	if err != nil {
		return err
	}
	if len(entries) == 0 {
		fmt.Println("corpus is empty")
		return nil
	}
	tbl := &report.Table{
		Title:   fmt.Sprintf("corpus %s (%d entries)", db.Dir(), len(entries)),
		Headers: []string{"id", "name", "platform", "T", "loop", "droop (mV)", "tol (mV)", "fail V", "digest"},
	}
	for _, e := range entries {
		fail := "-"
		if e.Expected.FailFloor > 0 {
			if e.Expected.FailFound {
				fail = report.F(e.Expected.FailVolts, 4)
			} else {
				fail = fmt.Sprintf(">%s", report.F(e.Expected.FailFloor, 3))
			}
		}
		tol := "exact"
		if e.Expected.DroopTolV > 0 {
			tol = report.F(e.Expected.DroopTolV*1e3, 2)
		}
		tbl.AddRow(e.ID, e.Name, e.Platform, fmt.Sprint(e.Threads), fmt.Sprint(e.LoopCycles),
			report.F(e.Expected.DroopV*1e3, 2), tol, fail, e.PlatformDigest[:12])
	}
	fmt.Println(tbl)
	return nil
}

func cmdAdd(args []string) error {
	fs := flag.NewFlagSet("add", flag.ExitOnError)
	dir := fs.String("db", "", "corpus directory")
	platform := fs.String("platform", "bulldozer", "platform the stressmarks were trained on")
	name := fs.String("name", "", "entry name override (single input only)")
	measure := fs.Uint64("measure", 0, "baseline measurement cycles (0 = default)")
	warmup := fs.Uint64("warmup", 0, "baseline warmup cycles (0 = default)")
	tol := fs.Float64("tol", 0, "droop tolerance in volts (0 = bit-exact)")
	failFloor := fs.Float64("fail-floor", 0, "also baseline the failure ladder down to this supply (0 = off)")
	fs.Parse(args)
	if fs.NArg() == 0 {
		return fmt.Errorf("add: no stressmark files given")
	}
	if *name != "" && fs.NArg() > 1 {
		return fmt.Errorf("add: -name only applies to a single input")
	}
	db, err := openDB(*dir)
	if err != nil {
		return err
	}
	p, err := corpus.ResolvePlatform(*platform)
	if err != nil {
		return err
	}
	cp, err := p.Compile()
	if err != nil {
		return err
	}
	for _, path := range fs.Args() {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		sm, _, err := core.LoadStressmark(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		e, err := corpus.Harvest(cp, *platform, sm, corpus.HarvestConfig{
			Name:          *name,
			MeasureCycles: *measure,
			WarmupCycles:  *warmup,
			DroopTolV:     *tol,
			FailFloor:     *failFloor,
		})
		if err != nil {
			return err
		}
		dst, err := db.Add(e)
		if err != nil {
			return err
		}
		fmt.Printf("added %s: droop %s -> %s\n", e.Name, report.MilliVolts(e.Expected.DroopV), dst)
	}
	return nil
}

// byPlatform groups entries so each platform is compiled (and its
// entries batch-measured) once.
func byPlatform(entries []*corpus.Entry) map[string][]*corpus.Entry {
	out := make(map[string][]*corpus.Entry)
	for _, e := range entries {
		out[e.Platform] = append(out[e.Platform], e)
	}
	return out
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	dir := fs.String("db", "", "corpus directory")
	lanes := fs.Int("lanes", 0, "replay lanes per batch (0 = default)")
	workers := fs.Int("workers", 0, "batch workers (0 = default)")
	skipFailure := fs.Bool("skip-failure", false, "skip voltage-at-failure ladders")
	romTol := fs.Float64("rom-tol", 0, "replay with the reduced-order PDN kernel at this tolerance (volts); entries baselined on the exact platform then report platform-skew")
	verbose := fs.Bool("v", false, "print per-entry results even when all pass")
	fs.Parse(args)
	// A negative (or NaN) tolerance would otherwise mint a meaningless
	// "rom:-…" platform digest and misclassify every entry.
	if *romTol < 0 || math.IsNaN(*romTol) {
		return fmt.Errorf("-rom-tol must be a non-negative voltage, got %v", *romTol)
	}
	db, err := openDB(*dir)
	if err != nil {
		return err
	}
	entries, err := db.Load()
	if err != nil {
		return err
	}
	if len(entries) == 0 {
		return fmt.Errorf("corpus %s is empty", db.Dir())
	}
	opt := corpus.ReplayOptions{Lanes: *lanes, Workers: *workers, SkipFailure: *skipFailure}

	bad := 0
	for platform, group := range byPlatform(entries) {
		p, err := corpus.ResolvePlatform(platform)
		if err != nil {
			return err
		}
		p.ROMTolV = *romTol
		cp, err := p.Compile()
		if err != nil {
			return err
		}
		for _, r := range corpus.Replay(cp, group, opt) {
			if r.Verdict != corpus.Pass {
				bad++
			}
			if r.Verdict != corpus.Pass || *verbose {
				printResult(r)
			}
		}
	}
	if bad > 0 {
		return fmt.Errorf("%d/%d entries did not pass (platform-skew from an intentional change? re-baseline with `corpus redux`)",
			bad, len(entries))
	}
	fmt.Printf("corpus: %d entries replayed, all pass\n", len(entries))
	return nil
}

func printResult(r corpus.Result) {
	line := fmt.Sprintf("%-14s %-24s %-9s", r.Verdict, r.Entry.Name, r.Entry.Platform)
	if r.Measured != nil {
		line += fmt.Sprintf(" droop %s (baseline %s)",
			report.MilliVolts(r.Measured.MaxDroopV), report.MilliVolts(r.Entry.Expected.DroopV))
	}
	if r.Detail != "" {
		line += ": " + r.Detail
	}
	fmt.Println(line)
}

// cmdRedux re-baselines every entry on its platform's current
// behaviour: same identity (and therefore the same file), fresh
// expectations and platform digest. Run it only after an intentional
// platform or simulator change, and commit the diff for review — the
// point of the corpus is that re-baselining is visible, not automatic.
func cmdRedux(args []string) error {
	fs := flag.NewFlagSet("redux", flag.ExitOnError)
	dir := fs.String("db", "", "corpus directory")
	skipFailure := fs.Bool("skip-failure", false, "drop failure-ladder baselines instead of re-running them")
	fs.Parse(args)
	db, err := openDB(*dir)
	if err != nil {
		return err
	}
	entries, err := db.Load()
	if err != nil {
		return err
	}
	if len(entries) == 0 {
		return fmt.Errorf("corpus %s is empty", db.Dir())
	}
	for platform, group := range byPlatform(entries) {
		p, err := corpus.ResolvePlatform(platform)
		if err != nil {
			return err
		}
		cp, err := p.Compile()
		if err != nil {
			return err
		}
		digest := testbed.PlatformDigest(p)
		for _, e := range group {
			old := e.Expected
			if err := rebaseline(cp, e, *skipFailure); err != nil {
				return fmt.Errorf("%s: %w", e.Name, err)
			}
			e.PlatformDigest = digest
			if _, err := db.Add(e); err != nil {
				return err
			}
			fmt.Printf("redux %-24s droop %s -> %s\n", e.Name,
				report.MilliVolts(old.DroopV), report.MilliVolts(e.Expected.DroopV))
		}
	}
	return nil
}

// rebaseline refreshes an entry's expectations from a fresh
// measurement, preserving its tolerance policy and ladder floor.
func rebaseline(cp *testbed.CompiledPlatform, e *corpus.Entry, skipFailure bool) error {
	rc, err := e.RunConfig(cp.Platform().Chip)
	if err != nil {
		return err
	}
	m, err := cp.Run(rc)
	if err != nil {
		return err
	}
	floor := e.Expected.FailFloor
	e.Expected = corpus.Expected{
		DroopV:      m.MaxDroopV,
		DroopTolV:   e.Expected.DroopTolV,
		MinV:        m.MinV,
		AvgPowerW:   m.AvgPowerW,
		Fingerprint: corpus.Fingerprint(m),
	}
	if floor > 0 && !skipFailure {
		v, found, err := cp.FindFailureVoltage(rc, floor)
		if err != nil {
			return err
		}
		e.Expected.FailFloor = floor
		e.Expected.FailVolts = v
		e.Expected.FailFound = found
	}
	return nil
}
