// Command audit generates a di/dt stressmark for a simulated platform
// and reports the search trajectory, the generated assembly, and its
// measured droop. This is the end-to-end AUDIT flow of Fig. 5 on the
// "hardware" (simulated testbed) path.
//
// Usage:
//
//	audit [flags]
//
//	-platform   bulldozer | phenom            (default bulldozer)
//	-threads    homogeneous thread count      (default 4)
//	-mode       resonance | excitation        (default resonance)
//	-loop       loop length in cycles; 0 = auto resonance sweep
//	-subblock   hierarchical sub-block size K (default 6)
//	-throttle   FP issue cap during generation (0 = off)
//	-pop        GA population                 (default 14)
//	-gens       GA max generations            (default 14)
//	-seed       RNG seed                      (default 1)
//	-o          write the stressmark assembly to this file
//	-obj        write the binary object image to this file
//	-save       write the finished stressmark (winner + population) here
//	-corpus-add harvest the finished stressmark into this corpus dir
//	-checkpoint write a mid-search checkpoint here every generation
//	-resume     continue from a -checkpoint or -save file
//	-faults     inject lab faults at this transient rate (0 = off)
//	-exact      force the reference per-cycle measurement loop
//	-rom-tol    volts of PDN replay error admitting the reduced-order
//	            kernel (0 = off, exact replay only); a non-zero value
//	            changes the platform digest
//	-batch-lanes    replay lanes per batched generation: auto (default)
//	                picks the width from the batch shape and a kernel
//	                calibration; an integer fixes it; negative disables
//	                batching
//	-trace-cache-mb trace cache budget in MiB (0 = default 128)
//	-cpuprofile write a pprof CPU profile of the search to this file
//	-pprof      serve net/http/pprof on this address (e.g. :6060)
//
// Worker mode (distributed search, see cmd/auditd):
//
//	-worker      run as a measurement worker instead of searching
//	-coordinator coordinator base URL, e.g. http://host:7070
//	-worker-id   stable worker name (default host.pid)
//	-worker-par  capture parallelism per leased unit (default 1)
//
// In worker mode the coordinator's trace tier is consulted
// automatically: traces another worker already captured are fetched in
// compressed form over /v1/trace instead of recaptured, and fresh
// captures are published back. -trace-store additionally keeps a local
// on-disk store in front of the tier, so a restarted worker warms up
// without touching the network.
//
// A search with -checkpoint survives Ctrl-C: the interrupted run exits
// cleanly and `audit -resume <checkpoint>` finishes it bit-identically
// to an uninterrupted run.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/audit"
	"repro/internal/corpus"
	"repro/internal/dist"
	"repro/internal/report"
	"repro/internal/testbed"
	"repro/internal/tracestore"
)

type cliOptions struct {
	platform, mode         string
	threads, loop          int
	subblock, throttle     int
	pop, gens              int
	seed                   int64
	outAsm, outObj, saveTo string
	checkpoint, resume     string
	corpusAdd              string
	faultRate              float64
	hetero                 bool
	exact                  bool
	romTol                 float64
	batchLanes             string
	traceCacheMB           int
	traceStore             string
	cpuProfile, pprofAddr  string
	worker                 bool
	coordinator, workerID  string
	workerPar              int
}

func main() {
	var c cliOptions
	flag.StringVar(&c.platform, "platform", "bulldozer", "bulldozer or phenom")
	flag.IntVar(&c.threads, "threads", 4, "homogeneous thread count")
	flag.StringVar(&c.mode, "mode", "resonance", "resonance or excitation")
	flag.IntVar(&c.loop, "loop", 0, "loop length in cycles (0 = auto sweep)")
	flag.IntVar(&c.subblock, "subblock", 6, "hierarchical sub-block cycles")
	flag.IntVar(&c.throttle, "throttle", 0, "FP throttle limit during generation")
	flag.IntVar(&c.pop, "pop", 14, "GA population size")
	flag.IntVar(&c.gens, "gens", 14, "GA max generations")
	flag.Int64Var(&c.seed, "seed", 1, "random seed")
	flag.StringVar(&c.outAsm, "o", "", "write NASM-style assembly here")
	flag.StringVar(&c.outObj, "obj", "", "write binary object image here")
	flag.StringVar(&c.saveTo, "save", "", "write the finished stressmark (winner + population) here")
	flag.StringVar(&c.corpusAdd, "corpus-add", "", "harvest the finished stressmark into this corpus directory (see cmd/corpus)")
	flag.StringVar(&c.checkpoint, "checkpoint", "", "write a mid-search checkpoint here every generation")
	flag.StringVar(&c.resume, "resume", "", "resume from a -checkpoint or -save file")
	flag.Float64Var(&c.faultRate, "faults", 0, "inject lab faults at this transient rate (0 = off)")
	flag.BoolVar(&c.hetero, "hetero", false, "give each thread its own genome (resonance mode only)")
	flag.BoolVar(&c.exact, "exact", false, "force the reference per-cycle measurement loop (disable trace replay)")
	flag.Float64Var(&c.romTol, "rom-tol", 0, "volts of PDN replay error admitting the reduced-order kernel (0 = exact replay only)")
	flag.StringVar(&c.batchLanes, "batch-lanes", "auto", "replay lanes per batched generation: auto, a fixed width, or negative to disable batching")
	flag.IntVar(&c.traceCacheMB, "trace-cache-mb", 0, "trace cache budget in MiB (0 = default 128)")
	flag.StringVar(&c.traceStore, "trace-store", "", "persist chip traces in this directory across runs (created if absent)")
	flag.StringVar(&c.cpuProfile, "cpuprofile", "", "write a pprof CPU profile of the search to this file")
	flag.StringVar(&c.pprofAddr, "pprof", "", "serve net/http/pprof on this address (e.g. :6060)")
	flag.BoolVar(&c.worker, "worker", false, "run as a measurement worker for a cmd/auditd coordinator")
	flag.StringVar(&c.coordinator, "coordinator", "", "coordinator base URL for -worker, e.g. http://host:7070")
	flag.StringVar(&c.workerID, "worker-id", "", "stable worker name for -worker (default host.pid)")
	flag.IntVar(&c.workerPar, "worker-par", 1, "capture parallelism per leased unit in -worker mode")
	flag.Parse()

	// A negative (or NaN) tolerance would otherwise be folded into the
	// platform digest as a meaningless "rom:-…" identity; reject it
	// before anything is compiled or registered. Checked here so both
	// the search path and -worker mode are covered.
	if c.romTol < 0 || math.IsNaN(c.romTol) {
		fmt.Fprintf(os.Stderr, "audit: -rom-tol must be a non-negative voltage, got %v\n", c.romTol)
		os.Exit(2)
	}

	if c.pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(c.pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "audit: pprof server:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "audit: pprof at http://%s/debug/pprof/\n", c.pprofAddr)
	}
	// stopProfile must run on every exit path (os.Exit skips defers).
	stopProfile := func() {}
	if c.cpuProfile != "" {
		f, err := os.Create(c.cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "audit:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "audit: cpuprofile:", err)
			os.Exit(1)
		}
		stopProfile = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
		defer stopProfile()
	}

	// Ctrl-C cancels the search between evaluations instead of killing
	// the process mid-write; with -checkpoint the run is resumable.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if c.worker {
		err := runWorker(ctx, c)
		if errors.Is(err, context.Canceled) {
			stopProfile()
			os.Exit(0) // clean shutdown: leases expire, coordinator reassigns
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "audit:", err)
			stopProfile()
			os.Exit(1)
		}
		return
	}

	err := run(ctx, c)
	if errors.Is(err, context.Canceled) {
		if c.checkpoint != "" {
			fmt.Fprintf(os.Stderr, "audit: interrupted; resume with -resume %s\n", c.checkpoint)
		} else {
			fmt.Fprintln(os.Stderr, "audit: interrupted (use -checkpoint to make searches resumable)")
		}
		stopProfile()
		os.Exit(130)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "audit:", err)
		stopProfile()
		os.Exit(1)
	}
}

func run(ctx context.Context, c cliOptions) error {
	var plat audit.Platform
	switch c.platform {
	case "bulldozer":
		plat = audit.BulldozerPlatform()
	case "phenom":
		plat = audit.PhenomPlatform()
	default:
		return fmt.Errorf("unknown platform %q", c.platform)
	}
	var m audit.Mode
	switch c.mode {
	case "resonance":
		m = audit.Resonance
	case "excitation":
		m = audit.Excitation
	default:
		return fmt.Errorf("unknown mode %q", c.mode)
	}
	// Applied to plat (not only Options) so every compile in this
	// process — search, resonance sweep, corpus harvest — shares one
	// platform identity.
	plat.ROMTolV = c.romTol

	lanes, err := parseBatchLanes(c.batchLanes)
	if err != nil {
		return err
	}
	opts := audit.Options{
		Platform:        plat,
		Threads:         c.threads,
		Mode:            m,
		LoopCycles:      c.loop,
		SubBlockCycles:  c.subblock,
		FPThrottle:      c.throttle,
		CheckpointPath:  c.checkpoint,
		ExactEval:       c.exact,
		ROMTolV:         c.romTol,
		BatchLanes:      lanes,
		TraceCacheBytes: c.traceCacheMB << 20,
		TraceStorePath:  c.traceStore,
		GA: audit.GAConfig{
			PopSize: c.pop, Elites: 2, TournamentK: 3,
			MutationProb: 0.6, MaxGenerations: c.gens, StagnantLimit: 6,
			Seed: c.seed,
		},
		Seed: c.seed,
		Name: fmt.Sprintf("A-%s-%dT", c.mode, c.threads),
	}

	if c.resume != "" {
		if err := loadResume(c.resume, &opts); err != nil {
			return err
		}
	}

	var injector *audit.FaultInjector
	if c.faultRate > 0 {
		// Scale the lab preset so -faults sets the transient-loss rate
		// and the other nuisances follow proportionally.
		fc := audit.LabFaults(c.seed)
		scale := c.faultRate / fc.TransientRate
		fc.TransientRate = c.faultRate
		fc.DropoutRate *= scale
		fc.ThrottleRate *= scale
		opts.WrapRunner = func(r audit.Runner) audit.Runner {
			in, err := audit.NewFaultInjector(fc, r)
			if err != nil {
				panic(err) // validated above: rate in (0,1]
			}
			injector = in
			return in
		}
		// Resilience policy to absorb the injected faults.
		opts.GA.MaxRetries = 4
		opts.GA.DegradeFailures = true
		fmt.Printf("fault injection on: transient rate %.0f%%, retries %d\n",
			100*c.faultRate, opts.GA.MaxRetries)
	}

	if c.hetero {
		if c.corpusAdd != "" {
			return fmt.Errorf("-corpus-add records homogeneous stressmarks only (not -hetero)")
		}
		return runHetero(ctx, c, plat, opts, injectorStats(&injector))
	}

	fmt.Printf("generating %s stressmark for %s (%dT, throttle=%d)...\n",
		c.mode, plat.Chip.Name, c.threads, c.throttle)
	start := time.Now()
	sm, err := audit.GenerateContext(ctx, opts)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	if len(sm.SweepPoints) > 0 {
		tbl := &report.Table{Title: "resonance sweep", Headers: []string{"loop (cyc)", "freq (MHz)", "droop (mV)"}}
		for _, p := range sm.SweepPoints {
			tbl.AddRow(fmt.Sprint(p.LoopCycles), report.F(p.FreqHz/1e6, 1), report.F(p.DroopV*1e3, 1))
		}
		fmt.Println(tbl)
	}
	fmt.Printf("loop length: %d cycles (%.1f MHz)\n", sm.LoopCycles,
		plat.Chip.ClockHz/float64(sm.LoopCycles)/1e6)
	fmt.Printf("GA: %d evaluations over %d generations", sm.Search.Evaluations, sm.Search.Generations)
	if hits, misses := sm.Search.CacheHits, sm.Search.CacheMisses; hits+misses > 0 {
		fmt.Printf(" (fitness cache: %d hits / %d misses, %.0f%% saved)",
			hits, misses, 100*float64(hits)/float64(hits+misses))
	}
	fmt.Println()
	printThroughput(sm.Search.Evaluations, elapsed,
		sm.Search.CacheHits, sm.Search.CacheMisses, sm.TraceStats)
	printResilience(sm.Search.Retries, sm.Search.TimedOut, sm.Search.Degraded, injector)
	fmt.Println(report.BarChart("best droop by generation (mV)",
		genLabels(len(sm.Search.History)), scale(sm.Search.History, 1e3), 40))
	fmt.Printf("best droop: %s (%.1f%% of nominal)\n",
		report.MilliVolts(sm.DroopV), 100*sm.DroopV/plat.Nominal())

	if c.outAsm != "" {
		if err := writeFileAtomic(c.outAsm, []byte(sm.Program.Text())); err != nil {
			return err
		}
		fmt.Println("assembly written to", c.outAsm)
	}
	if c.outObj != "" {
		blob, err := audit.EncodeProgram(sm.Program)
		if err != nil {
			return err
		}
		if err := writeFileAtomic(c.outObj, blob); err != nil {
			return err
		}
		fmt.Println("object image written to", c.outObj)
	}
	if c.saveTo != "" {
		if err := sm.SaveFile(c.saveTo); err != nil {
			return err
		}
		fmt.Println("stressmark written to", c.saveTo)
	}
	if c.corpusAdd != "" {
		if err := depositCorpus(c, plat, sm); err != nil {
			return err
		}
	}
	if c.outAsm == "" {
		fmt.Println("\n--- generated stressmark ---")
		fmt.Print(sm.Program.Text())
	}
	return nil
}

// parseBatchLanes maps the -batch-lanes argument onto
// core.Options.BatchLanes: "auto" (or empty) selects automatic width
// (0), an integer fixes the width, and a negative integer disables the
// batch pipeline.
func parseBatchLanes(s string) (int, error) {
	s = strings.TrimSpace(strings.ToLower(s))
	if s == "" || s == "auto" {
		return 0, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("-batch-lanes: %q is neither auto nor an integer", s)
	}
	return n, nil
}

// runWorker turns this process into a measurement shard for a
// cmd/auditd coordinator: compile the local platform, register with
// its digest, then lease → measure → post until killed. A SIGKILLed or
// partitioned worker costs the search nothing but a lease TTL.
func runWorker(ctx context.Context, c cliOptions) error {
	if c.coordinator == "" {
		return fmt.Errorf("-worker needs -coordinator <url>")
	}
	var plat audit.Platform
	switch c.platform {
	case "bulldozer":
		plat = audit.BulldozerPlatform()
	case "phenom":
		plat = audit.PhenomPlatform()
	default:
		return fmt.Errorf("unknown platform %q", c.platform)
	}
	// The ROM tolerance is platform identity: the worker registers the
	// ROM-enabled digest, so it only leases work from a coordinator
	// running the same tolerance.
	plat.ROMTolV = c.romTol
	id := c.workerID
	if id == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		id = fmt.Sprintf("%s.%d", host, os.Getpid())
	}
	cp, err := audit.Compile(plat)
	if err != nil {
		return err
	}
	if c.traceStore != "" {
		st, err := tracestore.Open(c.traceStore, 0)
		if err != nil {
			return fmt.Errorf("trace store: %w", err)
		}
		cp.SetTraceStore(st)
	}
	// The coordinator's trace tier sits below the local store: traces a
	// peer already captured arrive compressed over the wire, and fresh
	// captures are published for the rest of the pool. A coordinator
	// without a trace store answers 404 and every lookup degrades to a
	// local capture.
	tier, err := dist.NewTraceTierClient(dist.TraceTierConfig{
		BaseURL: c.coordinator, WorkerID: id,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	cp.SetTraceTier(tier)
	w, err := dist.NewWorker(dist.WorkerConfig{
		ID:       id,
		BaseURL:  c.coordinator,
		Runner:   cp,
		Platform: testbed.PlatformDigest(plat),
		Parallel: c.workerPar,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "audit: worker %s serving %s for %s\n", id, plat.Chip.Name, c.coordinator)
	err = w.Run(ctx)
	st := w.Stats()
	fmt.Fprintf(os.Stderr, "audit: worker %s done: %d units, %d abandoned, %d failures, %d rpc retries\n",
		id, st.Units, st.Abandoned, st.Failures, st.RPCRetries)
	if ts := cp.TraceStats(); ts.TierHits+ts.TierMisses+ts.Captures > 0 {
		fmt.Fprintf(os.Stderr, "audit: worker %s traces: %d captured, %d tier hits, %d store hits, %s on the wire, capture time saved %s\n",
			id, ts.Captures, ts.TierHits, ts.StoreHits, wireBytes(ts.WireBytes),
			time.Duration(ts.CaptureNSSaved).Round(time.Millisecond))
	}
	return err
}

// wireBytes renders a byte count with a binary unit.
func wireBytes(n uint64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

func runHetero(ctx context.Context, c cliOptions, plat audit.Platform, opts audit.Options, stats func() *audit.FaultStats) error {
	if opts.LoopCycles == 0 && opts.Resume == nil {
		return fmt.Errorf("-hetero needs an explicit -loop (run cmd/resonance first)")
	}
	fmt.Printf("generating heterogeneous %s stressmark for %s (%dT)...\n",
		c.mode, plat.Chip.Name, c.threads)
	start := time.Now()
	hsm, err := audit.GenerateHeteroContext(ctx, opts)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	fmt.Printf("GA: %d evaluations", hsm.Search.Evaluations)
	if hits, misses := hsm.Search.CacheHits, hsm.Search.CacheMisses; hits+misses > 0 {
		fmt.Printf(" (fitness cache: %d hits / %d misses)", hits, misses)
	}
	fmt.Println()
	printThroughput(hsm.Search.Evaluations, elapsed,
		hsm.Search.CacheHits, hsm.Search.CacheMisses, hsm.TraceStats)
	if s := stats(); s != nil {
		printResilienceStats(hsm.Search.Retries, hsm.Search.TimedOut, hsm.Search.Degraded, s)
	}
	fmt.Printf("best droop: %s; per-thread programs:\n", report.MilliVolts(hsm.DroopV))
	for i, prog := range hsm.Programs {
		fmt.Printf("  thread %d: %d instructions, FP fraction %.0f%%\n",
			i, prog.Len(), 100*prog.FPFraction())
	}
	if c.outAsm != "" {
		for i, prog := range hsm.Programs {
			name := fmt.Sprintf("%s.t%d", c.outAsm, i)
			if err := writeFileAtomic(name, []byte(prog.Text())); err != nil {
				return err
			}
		}
		fmt.Printf("per-thread assembly written to %s.t*\n", c.outAsm)
	}
	if c.saveTo != "" {
		if err := hsm.SaveFile(c.saveTo); err != nil {
			return err
		}
		fmt.Println("stressmark written to", c.saveTo)
	}
	return nil
}

// depositCorpus harvests the finished stressmark into the regression
// corpus: a fresh baseline measurement on a clean compiled platform,
// stamped with its digest (see cmd/corpus for replaying it in CI).
func depositCorpus(c cliOptions, plat audit.Platform, sm *audit.Stressmark) error {
	db, err := corpus.Open(c.corpusAdd)
	if err != nil {
		return err
	}
	cp, err := audit.Compile(plat)
	if err != nil {
		return err
	}
	e, err := corpus.Harvest(cp, c.platform, sm, corpus.HarvestConfig{})
	if err != nil {
		return err
	}
	path, err := db.Add(e)
	if err != nil {
		return err
	}
	fmt.Printf("corpus entry written to %s (droop baseline %s)\n",
		path, report.MilliVolts(e.Expected.DroopV))
	return nil
}

// loadResume points opts at a previous run's state. Both artifact kinds
// are accepted: a -checkpoint file resumes the search losslessly
// mid-flight; a -save file seeds a fresh search with the old
// population (the pre-checkpoint behaviour).
func loadResume(path string, opts *audit.Options) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if audit.IsSearchCheckpoint(blob) {
		ck, err := audit.LoadSearchCheckpoint(bytes.NewReader(blob))
		if err != nil {
			return err
		}
		opts.Resume = ck
		fmt.Printf("resuming search from %s (generation %d)\n", path, searchGen(ck))
		return nil
	}
	prev, pop, err := audit.LoadStressmark(bytes.NewReader(blob))
	if err != nil {
		return err
	}
	opts.SeedGenomes = pop
	if opts.LoopCycles == 0 {
		opts.LoopCycles = prev.LoopCycles
	}
	fmt.Printf("seeding from %s: %d genomes, previous best %.1f mV\n",
		path, len(pop), prev.DroopV*1e3)
	return nil
}

// searchGen peeks the generation counter out of the opaque GA state.
func searchGen(ck *audit.SearchCheckpoint) int {
	var probe struct {
		Gen int `json:"gen"`
	}
	_ = json.Unmarshal(ck.GA, &probe)
	return probe.Gen
}

func injectorStats(in **audit.FaultInjector) func() *audit.FaultStats {
	return func() *audit.FaultStats {
		if *in == nil {
			return nil
		}
		s := (*in).Stats()
		return &s
	}
}

// printThroughput summarises the evaluation pipeline: how fast the
// search scored candidates and how much work the memo, the trace
// cache, and the multi-lane replay kernels absorbed. It goes to
// stderr: stdout stays byte-identical across same-seed runs (the
// repo's determinism guarantee), and wall-clock timing is not.
func printThroughput(evals int, elapsed time.Duration, hits, misses int, ts audit.TraceStats) {
	if evals == 0 || elapsed <= 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "throughput: %.1f evals/sec over %s", float64(evals)/elapsed.Seconds(),
		elapsed.Round(time.Millisecond))
	if tot := hits + misses; tot > 0 {
		fmt.Fprintf(os.Stderr, ", memo hit rate %.0f%%", 100*float64(hits)/float64(tot))
	}
	if tot := ts.Hits + ts.Misses; tot > 0 {
		fmt.Fprintf(os.Stderr, ", trace-cache hit rate %.0f%%", 100*float64(ts.Hits)/float64(tot))
	}
	if ts.LaneBatches > 0 {
		fmt.Fprintf(os.Stderr, ", lane occupancy %.1f", float64(ts.LaneRuns)/float64(ts.LaneBatches))
	}
	if tot := ts.StoreHits + ts.StoreMisses; tot > 0 {
		fmt.Fprintf(os.Stderr, ", trace-store hits %d/%d", ts.StoreHits, tot)
	}
	if tot := ts.TierHits + ts.TierMisses; tot > 0 {
		fmt.Fprintf(os.Stderr, ", trace-tier hits %d/%d", ts.TierHits, tot)
	}
	if ts.WireBytes > 0 {
		fmt.Fprintf(os.Stderr, ", wire %s", wireBytes(ts.WireBytes))
	}
	if ts.CaptureNSSaved > 0 {
		fmt.Fprintf(os.Stderr, ", capture saved %s",
			time.Duration(ts.CaptureNSSaved).Round(time.Millisecond))
	}
	if ts.CaptureNS+ts.ReplayNS > 0 {
		fmt.Fprintf(os.Stderr, ", capture %s / replay %s",
			time.Duration(ts.CaptureNS).Round(time.Millisecond),
			time.Duration(ts.ReplayNS).Round(time.Millisecond))
	}
	if tot := ts.ROMReplays + ts.ExactReplays; tot > 0 {
		if ts.ReplayNS > 0 {
			fmt.Fprintf(os.Stderr, ", replay %s/lane",
				time.Duration(ts.ReplayNS/tot).Round(time.Microsecond))
		}
		fmt.Fprintf(os.Stderr, ", kernels %d rom / %d exact", ts.ROMReplays, ts.ExactReplays)
	}
	if ts.PeriodicReplays > 0 {
		fmt.Fprintf(os.Stderr, ", periodic %d (%d modal, %d probe lanes)",
			ts.PeriodicReplays, ts.ModalPeriodic, ts.AffineProbeLanes)
	}
	fmt.Fprintln(os.Stderr)
}

func printResilience(retries, timedOut, degraded int, in *audit.FaultInjector) {
	if in == nil {
		if retries+timedOut+degraded > 0 {
			fmt.Printf("resilience: %d retries, %d timeouts, %d degraded evaluations\n",
				retries, timedOut, degraded)
		}
		return
	}
	s := in.Stats()
	printResilienceStats(retries, timedOut, degraded, &s)
}

func printResilienceStats(retries, timedOut, degraded int, s *audit.FaultStats) {
	fmt.Printf("faults: %d runs, %d transient losses (%d dropouts), %d throttled, %d skewed\n",
		s.Runs, s.Transients, s.Dropouts, s.Throttled, s.Skewed)
	fmt.Printf("resilience: %d retries, %d timeouts, %d degraded evaluations\n",
		retries, timedOut, degraded)
}

// writeFileAtomic is audit.WriteFileAtomic for byte blobs.
func writeFileAtomic(path string, blob []byte) error {
	return audit.WriteFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write(blob)
		return err
	})
}

func genLabels(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("gen %02d", i+1)
	}
	return out
}

func scale(xs []float64, k float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x * k
	}
	return out
}
