// Command audit generates a di/dt stressmark for a simulated platform
// and reports the search trajectory, the generated assembly, and its
// measured droop. This is the end-to-end AUDIT flow of Fig. 5 on the
// "hardware" (simulated testbed) path.
//
// Usage:
//
//	audit [flags]
//
//	-platform  bulldozer | phenom            (default bulldozer)
//	-threads   homogeneous thread count      (default 4)
//	-mode      resonance | excitation        (default resonance)
//	-loop      loop length in cycles; 0 = auto resonance sweep
//	-subblock  hierarchical sub-block size K (default 6)
//	-throttle  FP issue cap during generation (0 = off)
//	-pop       GA population                 (default 14)
//	-gens      GA max generations            (default 14)
//	-seed      RNG seed                      (default 1)
//	-o         write the stressmark assembly to this file
//	-obj       write the binary object image to this file
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/audit"
	"repro/internal/report"
)

func main() {
	var (
		platform = flag.String("platform", "bulldozer", "bulldozer or phenom")
		threads  = flag.Int("threads", 4, "homogeneous thread count")
		mode     = flag.String("mode", "resonance", "resonance or excitation")
		loop     = flag.Int("loop", 0, "loop length in cycles (0 = auto sweep)")
		subblock = flag.Int("subblock", 6, "hierarchical sub-block cycles")
		throttle = flag.Int("throttle", 0, "FP throttle limit during generation")
		pop      = flag.Int("pop", 14, "GA population size")
		gens     = flag.Int("gens", 14, "GA max generations")
		seed     = flag.Int64("seed", 1, "random seed")
		outAsm   = flag.String("o", "", "write NASM-style assembly here")
		outObj   = flag.String("obj", "", "write binary object image here")
		saveTo   = flag.String("save", "", "write a resumable checkpoint (winner + population) here")
		resume   = flag.String("resume", "", "resume the search from a checkpoint written by -save")
		hetero   = flag.Bool("hetero", false, "give each thread its own genome (resonance mode only)")
	)
	flag.Parse()
	if err := run(*platform, *threads, *mode, *loop, *subblock, *throttle, *pop, *gens, *seed, *outAsm, *outObj, *saveTo, *resume, *hetero); err != nil {
		fmt.Fprintln(os.Stderr, "audit:", err)
		os.Exit(1)
	}
}

func run(platform string, threads int, mode string, loop, subblock, throttle, pop, gens int, seed int64, outAsm, outObj, saveTo, resume string, hetero bool) error {
	var plat audit.Platform
	switch platform {
	case "bulldozer":
		plat = audit.BulldozerPlatform()
	case "phenom":
		plat = audit.PhenomPlatform()
	default:
		return fmt.Errorf("unknown platform %q", platform)
	}
	var m audit.Mode
	switch mode {
	case "resonance":
		m = audit.Resonance
	case "excitation":
		m = audit.Excitation
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}

	var seedGenomes []audit.Genome
	if resume != "" {
		f, err := os.Open(resume)
		if err != nil {
			return err
		}
		prev, pop, err := audit.LoadStressmark(f)
		f.Close()
		if err != nil {
			return err
		}
		seedGenomes = pop
		if loop == 0 {
			loop = prev.LoopCycles
		}
		fmt.Printf("resuming from %s: %d genomes, previous best %.1f mV\n",
			resume, len(pop), prev.DroopV*1e3)
	}

	opts := audit.Options{
		SeedGenomes:    seedGenomes,
		Platform:       plat,
		Threads:        threads,
		Mode:           m,
		LoopCycles:     loop,
		SubBlockCycles: subblock,
		FPThrottle:     throttle,
		GA: audit.GAConfig{
			PopSize: pop, Elites: 2, TournamentK: 3,
			MutationProb: 0.6, MaxGenerations: gens, StagnantLimit: 6,
			Seed: seed,
		},
		Seed: seed,
		Name: fmt.Sprintf("A-%s-%dT", mode, threads),
	}

	if hetero {
		if loop == 0 {
			return fmt.Errorf("-hetero needs an explicit -loop (run cmd/resonance first)")
		}
		fmt.Printf("generating heterogeneous %s stressmark for %s (%dT)...\n",
			mode, plat.Chip.Name, threads)
		hsm, err := audit.GenerateHetero(opts)
		if err != nil {
			return err
		}
		fmt.Printf("GA: %d evaluations", hsm.Search.Evaluations)
		if hits, misses := hsm.Search.CacheHits, hsm.Search.CacheMisses; hits+misses > 0 {
			fmt.Printf(" (fitness cache: %d hits / %d misses)", hits, misses)
		}
		fmt.Println()
		fmt.Printf("best droop: %s; per-thread programs:\n", report.MilliVolts(hsm.DroopV))
		for i, prog := range hsm.Programs {
			fmt.Printf("  thread %d: %d instructions, FP fraction %.0f%%\n",
				i, prog.Len(), 100*prog.FPFraction())
		}
		if outAsm != "" {
			for i, prog := range hsm.Programs {
				name := fmt.Sprintf("%s.t%d", outAsm, i)
				if err := os.WriteFile(name, []byte(prog.Text()), 0o644); err != nil {
					return err
				}
			}
			fmt.Printf("per-thread assembly written to %s.t*\n", outAsm)
		}
		return nil
	}

	fmt.Printf("generating %s stressmark for %s (%dT, throttle=%d)...\n",
		mode, plat.Chip.Name, threads, throttle)
	sm, err := audit.Generate(opts)
	if err != nil {
		return err
	}

	if len(sm.SweepPoints) > 0 {
		tbl := &report.Table{Title: "resonance sweep", Headers: []string{"loop (cyc)", "freq (MHz)", "droop (mV)"}}
		for _, p := range sm.SweepPoints {
			tbl.AddRow(fmt.Sprint(p.LoopCycles), report.F(p.FreqHz/1e6, 1), report.F(p.DroopV*1e3, 1))
		}
		fmt.Println(tbl)
	}
	fmt.Printf("loop length: %d cycles (%.1f MHz)\n", sm.LoopCycles,
		plat.Chip.ClockHz/float64(sm.LoopCycles)/1e6)
	fmt.Printf("GA: %d evaluations over %d generations", sm.Search.Evaluations, sm.Search.Generations)
	if hits, misses := sm.Search.CacheHits, sm.Search.CacheMisses; hits+misses > 0 {
		fmt.Printf(" (fitness cache: %d hits / %d misses, %.0f%% saved)",
			hits, misses, 100*float64(hits)/float64(hits+misses))
	}
	fmt.Println()
	fmt.Println(report.BarChart("best droop by generation (mV)",
		genLabels(len(sm.Search.History)), scale(sm.Search.History, 1e3), 40))
	fmt.Printf("best droop: %s (%.1f%% of nominal)\n",
		report.MilliVolts(sm.DroopV), 100*sm.DroopV/plat.Nominal())

	if outAsm != "" {
		if err := os.WriteFile(outAsm, []byte(sm.Program.Text()), 0o644); err != nil {
			return err
		}
		fmt.Println("assembly written to", outAsm)
	}
	if outObj != "" {
		blob, err := audit.EncodeProgram(sm.Program)
		if err != nil {
			return err
		}
		if err := os.WriteFile(outObj, blob, 0o644); err != nil {
			return err
		}
		fmt.Println("object image written to", outObj)
	}
	if saveTo != "" {
		f, err := os.Create(saveTo)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := sm.Save(f); err != nil {
			return err
		}
		fmt.Println("checkpoint written to", saveTo)
	}
	if outAsm == "" {
		fmt.Println("\n--- generated stressmark ---")
		fmt.Print(sm.Program.Text())
	}
	return nil
}

func genLabels(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("gen %02d", i+1)
	}
	return out
}

func scale(xs []float64, k float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x * k
	}
	return out
}
