// Command auditd is the distributed stressmark search coordinator.
// It owns the GA loop exactly as cmd/audit does, but evaluates each
// generation by sharding the run configs into lease-based work units
// and dispatching them over HTTP/JSON to registered workers
// (`audit -worker -coordinator http://host:port`). The search survives
// worker crashes, hangs and lossy networks — leases expire and units
// are reassigned or evaluated locally — and the result is bit-identical
// to a single-node `audit` run with the same flags.
//
// Usage:
//
//	auditd [flags]
//
//	-listen     address to serve the worker protocol on (default :7070)
//	-platform   bulldozer | phenom            (default bulldozer)
//	-threads    homogeneous thread count      (default 4)
//	-mode       resonance | excitation        (default resonance)
//	-loop       loop length in cycles; 0 = auto resonance sweep
//	-subblock   hierarchical sub-block size K (default 6)
//	-pop        GA population                 (default 14)
//	-gens       GA max generations            (default 14)
//	-seed       RNG seed                      (default 1)
//	-o          write the stressmark assembly to this file
//	-save       write the finished stressmark here
//	-checkpoint write a mid-search checkpoint here every generation
//	-resume     continue from a -checkpoint file
//	-unit-size  run configs per work unit     (default 4)
//	-lease-ttl  lease deadline; heartbeats extend it (default 3s)
//	-min-workers wait for this many workers before searching (default 0)
//	-trace-store persist chip traces in this directory AND serve them to
//	            workers over /v1/trace: each distinct trace is captured
//	            once somewhere in the pool, published compressed, and
//	            replayed everywhere else; a warm directory carries whole
//	            searches with zero recaptures
//	-rom-tol    volts of PDN replay error admitting the reduced-order
//	            kernel (0 = off); part of the platform digest, so
//	            workers must be started with the same value
//	-batch-lanes    replay lanes per batched generation: auto (default)
//	                picks the width automatically; an integer fixes it;
//	                negative disables batching
//	-v          log lease traffic to stderr
//
// A coordinator crash is recoverable: restart auditd with the same
// flags plus -resume <checkpoint> and a fresh worker pool; the stitched
// search finishes bit-identical to an uninterrupted one.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/ga"
	"repro/internal/testbed"
	"repro/internal/tracestore"
)

type daemonOptions struct {
	listen             string
	platform, mode     string
	threads, loop      int
	subblock           int
	pop, gens          int
	seed               int64
	outAsm, saveTo     string
	checkpoint, resume string
	unitSize           int
	leaseTTL           time.Duration
	minWorkers         int
	traceStore         string
	romTol             float64
	batchLanes         string
	verbose            bool
}

func main() {
	var c daemonOptions
	flag.StringVar(&c.listen, "listen", ":7070", "address to serve the worker protocol on")
	flag.StringVar(&c.platform, "platform", "bulldozer", "bulldozer or phenom")
	flag.IntVar(&c.threads, "threads", 4, "homogeneous thread count")
	flag.StringVar(&c.mode, "mode", "resonance", "resonance or excitation")
	flag.IntVar(&c.loop, "loop", 0, "loop length in cycles (0 = auto sweep)")
	flag.IntVar(&c.subblock, "subblock", 6, "hierarchical sub-block cycles")
	flag.IntVar(&c.pop, "pop", 14, "GA population size")
	flag.IntVar(&c.gens, "gens", 14, "GA max generations")
	flag.Int64Var(&c.seed, "seed", 1, "random seed")
	flag.StringVar(&c.outAsm, "o", "", "write NASM-style assembly here")
	flag.StringVar(&c.saveTo, "save", "", "write the finished stressmark here")
	flag.StringVar(&c.checkpoint, "checkpoint", "", "write a mid-search checkpoint here every generation")
	flag.StringVar(&c.resume, "resume", "", "resume from a -checkpoint file")
	flag.IntVar(&c.unitSize, "unit-size", 0, "run configs per work unit (0 = default 4)")
	flag.DurationVar(&c.leaseTTL, "lease-ttl", 0, "lease deadline; heartbeats extend it (0 = default 3s)")
	flag.IntVar(&c.minWorkers, "min-workers", 0, "wait for this many registered workers before searching")
	flag.StringVar(&c.traceStore, "trace-store", "", "persist chip traces in this directory and serve them to workers over /v1/trace")
	flag.Float64Var(&c.romTol, "rom-tol", 0, "volts of PDN replay error admitting the reduced-order kernel (0 = exact replay only)")
	flag.StringVar(&c.batchLanes, "batch-lanes", "auto", "replay lanes per batched generation: auto, a fixed width, or negative to disable batching")
	flag.BoolVar(&c.verbose, "v", false, "log lease traffic to stderr")
	flag.Parse()

	// A negative (or NaN) tolerance would otherwise be folded into the
	// platform digest workers must match; reject it up front.
	if c.romTol < 0 || math.IsNaN(c.romTol) {
		fmt.Fprintf(os.Stderr, "auditd: -rom-tol must be a non-negative voltage, got %v\n", c.romTol)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	err := run(ctx, c)
	if errors.Is(err, context.Canceled) {
		if c.checkpoint != "" {
			fmt.Fprintf(os.Stderr, "auditd: interrupted; resume with -resume %s\n", c.checkpoint)
		} else {
			fmt.Fprintln(os.Stderr, "auditd: interrupted (use -checkpoint to make searches resumable)")
		}
		os.Exit(130)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "auditd:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, c daemonOptions) error {
	var plat testbed.Platform
	switch c.platform {
	case "bulldozer":
		plat = testbed.Bulldozer()
	case "phenom":
		plat = testbed.Phenom()
	default:
		return fmt.Errorf("unknown platform %q", c.platform)
	}
	var m core.Mode
	switch c.mode {
	case "resonance":
		m = core.Resonance
	case "excitation":
		m = core.Excitation
	default:
		return fmt.Errorf("unknown mode %q", c.mode)
	}
	// The ROM tolerance is part of the platform digest the coordinator
	// registers workers against, so both sides run the same kernels.
	plat.ROMTolV = c.romTol
	lanes, err := parseBatchLanes(c.batchLanes)
	if err != nil {
		return err
	}

	// Bind before searching so a bad -listen fails fast, and so workers
	// can start polling while the platform compiles. Until the
	// coordinator exists the handler answers 503; workers treat that as
	// any other transient transport error and retry.
	ln, err := net.Listen("tcp", c.listen)
	if err != nil {
		return err
	}
	type handlerBox struct{ h http.Handler }
	var handler atomic.Value
	handler.Store(handlerBox{http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "auditd: coordinator warming up", http.StatusServiceUnavailable)
	})})
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handler.Load().(handlerBox).h.ServeHTTP(w, r)
	})}
	go srv.Serve(ln)
	defer srv.Close()
	fmt.Fprintf(os.Stderr, "auditd: serving worker protocol on %s\n", ln.Addr())

	logf := func(string, ...any) {}
	if c.verbose {
		logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	// With -trace-store the coordinator both persists its own captures
	// there (via TraceStorePath on the local platform) and serves the
	// directory to workers over /v1/trace. Two handles on one directory
	// race benignly: same key, same bytes, atomic renames.
	var coordStore *tracestore.Store
	if c.traceStore != "" {
		if coordStore, err = tracestore.Open(c.traceStore, 0); err != nil {
			return fmt.Errorf("trace store: %w", err)
		}
	}

	var co *dist.Coordinator
	opts := core.Options{
		Platform:       plat,
		Threads:        c.threads,
		Mode:           m,
		LoopCycles:     c.loop,
		SubBlockCycles: c.subblock,
		CheckpointPath: c.checkpoint,
		BatchLanes:     lanes,
		TraceStorePath: c.traceStore,
		GA: ga.Config{
			PopSize: c.pop, Elites: 2, TournamentK: 3,
			MutationProb: 0.6, MaxGenerations: c.gens, StagnantLimit: 6,
			Seed: c.seed,
		},
		Seed: c.seed,
		Name: fmt.Sprintf("A-%s-%dT", c.mode, c.threads),
		WrapRunner: func(r testbed.Runner) testbed.Runner {
			local, ok := r.(dist.LocalRunner)
			if !ok {
				// Nothing to distribute (e.g. a fault injector is already
				// wrapping the platform): stay single-node.
				fmt.Fprintln(os.Stderr, "auditd: runner not distributable, evaluating locally")
				return r
			}
			var err error
			co, err = dist.NewCoordinator(dist.Config{
				Local:      local,
				Platform:   testbed.PlatformDigest(plat),
				UnitSize:   c.unitSize,
				LeaseTTL:   c.leaseTTL,
				TraceStore: coordStore,
				Logf:       logf,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "auditd:", err)
				return r
			}
			handler.Store(handlerBox{co.Handler()})
			waitForWorkers(ctx, co, c.minWorkers)
			return co
		},
	}

	if c.resume != "" {
		blob, err := os.ReadFile(c.resume)
		if err != nil {
			return err
		}
		ck, err := core.LoadSearchCheckpoint(bytes.NewReader(blob))
		if err != nil {
			return err
		}
		opts.Resume = ck
		fmt.Fprintf(os.Stderr, "auditd: resuming search from %s (generation %d)\n",
			c.resume, searchGen(ck))
	}

	fmt.Fprintf(os.Stderr, "auditd: generating %s stressmark for %s (%dT)...\n",
		c.mode, plat.Chip.Name, c.threads)
	start := time.Now()
	sm, err := core.Generate(ctx, opts)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	// stdout carries only the deterministic search outcome — it must be
	// byte-identical across same-flag runs, whatever the pool did and
	// however warm the trace tier was. Timing and distribution telemetry
	// go to stderr.
	fmt.Printf("GA: %d evaluations over %d generations\n",
		sm.Search.Evaluations, sm.Search.Generations)
	fmt.Fprintf(os.Stderr, "auditd: search took %s\n", elapsed.Round(time.Millisecond))
	if co != nil {
		st := co.Stats()
		fmt.Fprintf(os.Stderr, "dist: %d units remote, %d local, %d lease expiries, %d requeues, %d duplicate results, %d suspensions, %d evictions\n",
			st.UnitsRemote, st.UnitsLocal, st.LeaseExpiries, st.Requeues,
			st.DuplicateResults, st.Suspensions, st.Evictions)
		if ts := co.TraceTierStats(); ts.Hits+ts.Claims+ts.Puts > 0 {
			fmt.Fprintf(os.Stderr, "trace-tier: %d hits, %d capture claims, %d waits, %d publishes, %d claim steals, %d wire bytes\n",
				ts.Hits, ts.Claims, ts.Waits, ts.Puts, ts.ClaimSteals, ts.WireBytes)
		}
	}
	fmt.Printf("best droop: %.1f mV (loop %d cycles)\n", sm.DroopV*1e3, sm.LoopCycles)

	if c.outAsm != "" {
		if err := writeFileAtomic(c.outAsm, []byte(sm.Program.Text())); err != nil {
			return err
		}
		fmt.Println("assembly written to", c.outAsm)
	}
	if c.saveTo != "" {
		if err := sm.SaveFile(c.saveTo); err != nil {
			return err
		}
		fmt.Println("stressmark written to", c.saveTo)
	}
	if c.outAsm == "" && c.saveTo == "" {
		fmt.Println("\n--- generated stressmark ---")
		fmt.Print(sm.Program.Text())
	}
	return nil
}

// waitForWorkers blocks until min workers have registered (or ctx
// dies). Purely cosmetic for determinism — the coordinator degrades to
// local evaluation when the pool is empty — but it avoids burning the
// first generation locally while a fleet is still booting.
func waitForWorkers(ctx context.Context, co *dist.Coordinator, min int) {
	if min <= 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "auditd: waiting for %d workers...\n", min)
	t := time.NewTicker(50 * time.Millisecond)
	defer t.Stop()
	for co.LiveWorkers() < min {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
	fmt.Fprintf(os.Stderr, "auditd: %d workers live\n", co.LiveWorkers())
}

// parseBatchLanes maps the -batch-lanes argument onto
// core.Options.BatchLanes: "auto" (or empty) selects automatic width
// (0), an integer fixes the width, and a negative integer disables the
// batch pipeline.
func parseBatchLanes(s string) (int, error) {
	s = strings.TrimSpace(strings.ToLower(s))
	if s == "" || s == "auto" {
		return 0, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("-batch-lanes: %q is neither auto nor an integer", s)
	}
	return n, nil
}

// searchGen peeks the generation counter out of the opaque GA state.
func searchGen(ck *core.SearchCheckpoint) int {
	var probe struct {
		Gen int `json:"gen"`
	}
	_ = json.Unmarshal(ck.GA, &probe)
	return probe.Gen
}

func writeFileAtomic(path string, blob []byte) error {
	return core.WriteFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write(blob)
		return err
	})
}
