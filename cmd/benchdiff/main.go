// Command benchdiff captures and diffs Go benchmark results, the
// regression harness behind scripts/bench_regress.sh. It reads `go
// test -bench -benchmem` output on stdin.
//
//	benchdiff -capture BENCH_eval.json   # write/update the baseline
//	benchdiff -baseline BENCH_eval.json  # diff against it; exit 1 on regression
//
// A regression is ns/op growing more than -max-regress (fractional,
// default 0.25) or allocs/op growing more than -max-allocs-regress
// (default 0.02). Single-eval allocation counts are deterministic, but
// whole-GA-run benchmarks jitter by a few allocations from goroutine
// scheduling, so allocs get a little slack too — far less than timing.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark's captured result.
type Entry struct {
	NsPerOp     float64 `json:"ns_op"`
	BytesPerOp  float64 `json:"bytes_op"`
	AllocsPerOp float64 `json:"allocs_op"`
}

// Baseline is the persisted BENCH_eval.json shape.
type Baseline struct {
	// Note documents where the numbers came from.
	Note       string           `json:"note,omitempty"`
	Benchmarks map[string]Entry `json:"benchmarks"`
}

func main() {
	capture := flag.String("capture", "", "write parsed results to this baseline file")
	baseline := flag.String("baseline", "", "diff parsed results against this baseline file")
	maxRegress := flag.Float64("max-regress", 0.25, "allowed fractional ns/op growth")
	maxAllocs := flag.Float64("max-allocs-regress", 0.02, "allowed fractional allocs/op growth")
	note := flag.String("note", "", "note stored with -capture")
	flag.Parse()
	if (*capture == "") == (*baseline == "") {
		fmt.Fprintln(os.Stderr, "benchdiff: exactly one of -capture or -baseline is required")
		os.Exit(2)
	}

	got, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	if len(got) == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no benchmark lines on stdin")
		os.Exit(2)
	}

	if *capture != "" {
		b := Baseline{Note: *note, Benchmarks: got}
		blob, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*capture, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		fmt.Printf("captured %d benchmarks to %s\n", len(got), *capture)
		return
	}

	blob, err := os.ReadFile(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	var base Baseline
	if err := json.Unmarshal(blob, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %s: %v\n", *baseline, err)
		os.Exit(2)
	}
	if diff(base.Benchmarks, got, *maxRegress, *maxAllocs) {
		os.Exit(1)
	}
}

// parse extracts benchmark lines from `go test -bench` output. The
// trailing -N (GOMAXPROCS) suffix is stripped so results compare
// across machines with different core counts.
func parse(r io.Reader) (map[string]Entry, error) {
	out := map[string]Entry{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		e := Entry{}
		seen := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				e.NsPerOp = v
				seen = true
			case "B/op":
				e.BytesPerOp = v
			case "allocs/op":
				e.AllocsPerOp = v
			}
		}
		if seen {
			out[name] = e
		}
	}
	return out, sc.Err()
}

// diff prints a comparison table and reports whether any benchmark
// regressed.
func diff(base, got map[string]Entry, maxRegress, maxAllocs float64) bool {
	names := make([]string, 0, len(got))
	for name := range got {
		names = append(names, name)
	}
	sort.Strings(names)

	regressed := false
	fmt.Printf("%-48s %14s %14s %8s %10s\n", "benchmark", "base ns/op", "now ns/op", "Δ", "allocs")
	for _, name := range names {
		g := got[name]
		b, ok := base[name]
		if !ok {
			fmt.Printf("%-48s %14s %14.0f %8s %10.0f  (new)\n", name, "-", g.NsPerOp, "-", g.AllocsPerOp)
			continue
		}
		delta := 0.0
		if b.NsPerOp > 0 {
			delta = (g.NsPerOp - b.NsPerOp) / b.NsPerOp
		}
		mark := ""
		if delta > maxRegress {
			mark = "  ← ns/op REGRESSION"
			regressed = true
		}
		if g.AllocsPerOp > b.AllocsPerOp*(1+maxAllocs) {
			mark += "  ← allocs/op REGRESSION"
			regressed = true
		}
		fmt.Printf("%-48s %14.0f %14.0f %+7.1f%% %10.0f%s\n",
			name, b.NsPerOp, g.NsPerOp, 100*delta, g.AllocsPerOp, mark)
	}
	// A baseline entry with no counterpart in this run means the gate
	// silently shrank (benchmark renamed, deleted, or filtered out) —
	// that must fail as loudly as a slowdown, or regressions hide by
	// disappearing.
	missing := false
	for name := range base {
		if _, ok := got[name]; !ok {
			fmt.Printf("%-48s  MISSING from this run\n", name)
			missing = true
		}
	}
	switch {
	case missing && regressed:
		fmt.Println("\nFAIL: benchmark regression and missing benchmarks against baseline")
	case missing:
		fmt.Println("\nFAIL: baseline benchmarks missing from this run")
	case regressed:
		fmt.Println("\nFAIL: benchmark regression against baseline")
	default:
		fmt.Println("\nok: no regressions against baseline")
	}
	return regressed || missing
}
