package main

import (
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: repro/internal/core
BenchmarkGARunMemoized-8   	      12	  95000000 ns/op	 1200000 B/op	    8000 allocs/op
BenchmarkEvalReplay-16     	    5000	    240000 ns/op	    1024 B/op	      12 allocs/op
BenchmarkNoMem             	    1000	   1000000 ns/op
some unrelated line
PASS
ok  	repro/internal/core	12.3s
`

func TestParseBenchOutput(t *testing.T) {
	got, err := parse(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(got), got)
	}
	// The -N GOMAXPROCS suffix must be stripped so baselines compare
	// across machines.
	e, ok := got["BenchmarkGARunMemoized"]
	if !ok {
		t.Fatalf("GOMAXPROCS suffix not stripped: %v", got)
	}
	if e.NsPerOp != 95000000 || e.BytesPerOp != 1200000 || e.AllocsPerOp != 8000 {
		t.Errorf("entry mis-parsed: %+v", e)
	}
	// A benchmark without -benchmem columns still parses its timing.
	if e := got["BenchmarkNoMem"]; e.NsPerOp != 1000000 || e.AllocsPerOp != 0 {
		t.Errorf("timing-only line mis-parsed: %+v", e)
	}
}

func TestParseIgnoresNonBenchmarkLines(t *testing.T) {
	got, err := parse(strings.NewReader("PASS\nok\nBenchmarkBroken abc def\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("nonsense lines produced entries: %v", got)
	}
}

// TestDiffFailsOnMissingBaseline pins the failure mode the gate grew in
// PR 5: a baseline benchmark absent from the current run (renamed,
// deleted, or filtered out of the bench pattern) must fail the diff —
// otherwise a regression can hide by making its benchmark disappear.
func TestDiffFailsOnMissingBaseline(t *testing.T) {
	base := map[string]Entry{
		"BenchmarkKept":    {NsPerOp: 100},
		"BenchmarkDropped": {NsPerOp: 100},
	}
	got := map[string]Entry{
		"BenchmarkKept": {NsPerOp: 100},
	}
	if !diff(base, got, 0.25, 0.02) {
		t.Error("missing baseline benchmark did not fail the diff")
	}
	// With the benchmark restored, the same numbers pass.
	got["BenchmarkDropped"] = Entry{NsPerOp: 100}
	if diff(base, got, 0.25, 0.02) {
		t.Error("clean run failed the diff")
	}
}

func TestDiffDetectsRegressions(t *testing.T) {
	base := map[string]Entry{"BenchmarkX": {NsPerOp: 100, AllocsPerOp: 100}}

	slow := map[string]Entry{"BenchmarkX": {NsPerOp: 126, AllocsPerOp: 100}}
	if !diff(base, slow, 0.25, 0.02) {
		t.Error("26% ns/op growth passed a 25% gate")
	}
	ok := map[string]Entry{"BenchmarkX": {NsPerOp: 124, AllocsPerOp: 100}}
	if diff(base, ok, 0.25, 0.02) {
		t.Error("24% ns/op growth failed a 25% gate")
	}
	allocs := map[string]Entry{"BenchmarkX": {NsPerOp: 100, AllocsPerOp: 103}}
	if !diff(base, allocs, 0.25, 0.02) {
		t.Error("3% allocs/op growth passed a 2% gate")
	}
}

// TestDiffAllowsNewBenchmarks: a benchmark present only in the current
// run is informational, not a failure — gates grow monotonically.
func TestDiffAllowsNewBenchmarks(t *testing.T) {
	base := map[string]Entry{"BenchmarkX": {NsPerOp: 100}}
	got := map[string]Entry{
		"BenchmarkX":   {NsPerOp: 100},
		"BenchmarkNew": {NsPerOp: 999999},
	}
	if diff(base, got, 0.25, 0.02) {
		t.Error("new benchmark failed the diff")
	}
}
