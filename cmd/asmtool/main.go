// Command asmtool is the binutils of the stressmark toolchain: it
// assembles NASM-flavoured text into the binary object format,
// disassembles object images back to text, prints addressed listings,
// and lints programs (validation + instruction-mix profile).
//
// Usage:
//
//	asmtool -c  prog.asm -o prog.obj    assemble
//	asmtool -d  prog.obj                disassemble to stdout
//	asmtool -l  prog.asm|prog.obj       addressed listing
//	asmtool -profile prog.asm|prog.obj  instruction mix + FP fraction
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/asm"
	"repro/internal/isa"
)

func main() {
	var (
		compile = flag.Bool("c", false, "assemble text to an object image")
		disasm  = flag.Bool("d", false, "disassemble an object image to text")
		listing = flag.Bool("l", false, "print an addressed listing")
		profile = flag.Bool("profile", false, "print the instruction-mix profile")
		out     = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "asmtool: need exactly one input file")
		os.Exit(2)
	}
	if err := run(*compile, *disasm, *listing, *profile, *out, flag.Arg(0)); err != nil {
		fmt.Fprintln(os.Stderr, "asmtool:", err)
		os.Exit(1)
	}
}

// load reads either a text program or a binary object, sniffing the
// object magic.
func load(path string) (*asm.Program, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) >= 4 && string(data[:4]) == "ADT1" {
		return asm.Decode(data)
	}
	return asm.Parse(string(data))
}

func emit(out string, data []byte) error {
	if out == "" {
		_, err := os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(out, data, 0o644)
}

func run(compile, disasm, listing, profile bool, out, path string) error {
	p, err := load(path)
	if err != nil {
		return err
	}
	switch {
	case compile:
		blob, err := asm.Encode(p)
		if err != nil {
			return err
		}
		if out == "" {
			return fmt.Errorf("-c needs -o (refusing to write binary to a terminal)")
		}
		return emit(out, blob)
	case disasm:
		return emit(out, []byte(p.Text()))
	case listing:
		return emit(out, []byte(p.Listing()))
	case profile:
		mix := p.InstructionMix()
		classes := make([]isa.Class, 0, len(mix))
		for c := range mix {
			classes = append(classes, c)
		}
		sort.Slice(classes, func(i, j int) bool { return mix[classes[i]] > mix[classes[j]] })
		fmt.Printf("%s: %d instructions, FP fraction %.1f%%\n", p.Name, p.Len(), 100*p.FPFraction())
		for _, c := range classes {
			fmt.Printf("  %-8v %5d\n", c, mix[c])
		}
		return nil
	default:
		// Default action: validate and summarise.
		fmt.Printf("%s: OK (%d instructions, %d labels, %d byte data segment)\n",
			p.Name, p.Len(), len(p.Labels), p.MemBytes)
		return nil
	}
}
