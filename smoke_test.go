package repro

import "testing"

// TestHarnessSmoke keeps `go test .` meaningful without -bench: it runs
// the cheapest experiment end-to-end through the shared lab.
func TestHarnessSmoke(t *testing.T) {
	l := getLab()
	res, err := l.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Peaks) < 3 {
		t.Fatalf("expected three PDN resonances, got %d", len(res.Peaks))
	}
	rows := l.DitherCost()
	if len(rows) != 4 {
		t.Fatalf("dither cost rows = %d", len(rows))
	}
}
