// Package repro is a from-scratch Go reproduction of "AUDIT: Stress
// Testing the Automatic Way" (Kim, John, Pant, Manne, Schulte, Bircher,
// Sibi Govindan — MICRO 2012): an automated di/dt stressmark generation
// framework for multi-core processors, together with every substrate
// the paper's evaluation depends on — a cycle-level out-of-order
// multi-core CPU model with per-cycle current draw, a lumped-RLC
// power-delivery-network transient solver, a virtual oscilloscope and
// failure model, OS-interference modelling, the comparison workloads,
// and a benchmark harness that regenerates every table and figure.
//
// Use package repro/audit for the public API; see README.md, DESIGN.md
// and EXPERIMENTS.md, and run `go test -bench=. .` for the full
// evaluation.
package repro
