package repro

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/corpus"
	"repro/internal/tracestore"
)

// TestTraceCompressionOnCorpus is the acceptance bar for the v2 trace
// record format: captured on the committed regression corpus — real
// stressmark traces, not synthetic streams — the compressed records
// must be at least 4× smaller than the legacy v1 flat encoding they
// replace. The ratio is measured on the actual store files a warm
// distributed search would move over /v1/trace.
func TestTraceCompressionOnCorpus(t *testing.T) {
	db, err := corpus.Open(seedCorpusDir)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := db.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("seed corpus is empty")
	}

	dir := t.TempDir()
	store, err := tracestore.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	byPlatform := map[string][]*corpus.Entry{}
	for _, e := range entries {
		byPlatform[e.Platform] = append(byPlatform[e.Platform], e)
	}
	for platform, group := range byPlatform {
		p, err := corpus.ResolvePlatform(platform)
		if err != nil {
			t.Fatal(err)
		}
		cp, err := p.Compile()
		if err != nil {
			t.Fatal(err)
		}
		cp.SetTraceStore(store)
		for _, e := range group {
			rc, err := e.RunConfig(p.Chip)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := cp.Run(rc); err != nil {
				t.Fatalf("%s: %v", e.Name, err)
			}
		}
	}

	files, err := filepath.Glob(filepath.Join(dir, "*.trace"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("corpus replay captured no trace records")
	}
	var v1Total, v2Total int64
	for _, f := range files {
		blob, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		rec, ok := tracestore.Decode(blob)
		if !ok {
			t.Fatalf("%s: stored record does not decode", filepath.Base(f))
		}
		v2Total += int64(len(blob))
		v1Total += int64(tracestore.EncodedSizeV1(rec))
	}
	ratio := float64(v1Total) / float64(v2Total)
	t.Logf("corpus traces: %d records, v1 %d B → v2 %d B (%.1f×)",
		len(files), v1Total, v2Total, ratio)
	if ratio < 4 {
		t.Errorf("v2 compression on corpus traces is %.2f×, want ≥ 4×", ratio)
	}
}
