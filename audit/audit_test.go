package audit

import (
	"testing"

	"repro/internal/isa"
)

func TestFacadeEndToEnd(t *testing.T) {
	plat := BulldozerPlatform()
	sm, err := Generate(Options{
		Platform:      plat,
		LoopCycles:    36,
		Threads:       4,
		GA:            GAConfig{PopSize: 8, Elites: 2, TournamentK: 3, MutationProb: 0.6, MaxGenerations: 3, Seed: 3},
		MeasureCycles: 2500,
		WarmupCycles:  1500,
		Seed:          3,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := MeasureDroop(plat, sm.Program, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.MaxDroopV <= 0 {
		t.Fatal("no droop measured through the facade")
	}
	// Round-trip through the object format.
	blob, err := EncodeProgram(sm.Program)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeProgram(blob)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != sm.Program.Len() {
		t.Error("program changed across encode/decode")
	}
	// And through text.
	if _, err := ParseProgram(sm.Program.Text()); err != nil {
		t.Errorf("text round trip: %v", err)
	}
}

func TestFacadeWorkloadsAndMarks(t *testing.T) {
	if len(Benchmarks()) < 15 {
		t.Errorf("benchmark suite too small: %d", len(Benchmarks()))
	}
	for _, p := range []*Program{SM1(36), SM2(36), SMRes(36)} {
		if err := p.Validate(); err != nil {
			t.Error(err)
		}
	}
}

func TestFacadeDitherPlans(t *testing.T) {
	plan, err := ExactDither([]int{0, 1, 2, 3}, 24, 960)
	if err != nil {
		t.Fatal(err)
	}
	if plan.SweepCycles != 960*24*24*24 {
		t.Errorf("exact sweep = %g", plan.SweepCycles)
	}
	if _, err := ApproxDither([]int{0, 1}, 24, 960, 3); err != nil {
		t.Error(err)
	}
}

func TestFacadeCostFunctions(t *testing.T) {
	m := &Measurement{MaxDroopV: 0.05, AvgPowerW: 25, Cycles: 10}
	if MaxDroop(m) != 0.05 {
		t.Error("MaxDroop")
	}
	if DroopPerWatt(m) != 0.002 {
		t.Error("DroopPerWatt")
	}
	pw := PathWeighted(map[isa.Unit]float64{isa.UnitFPU: 0.1})
	if pw(m) != 0.05 {
		t.Error("PathWeighted with no FPU activity should equal droop")
	}
}

func TestFacadeFailureSearch(t *testing.T) {
	plat := BulldozerPlatform()
	v, ok, err := FindFailureVoltage(plat, SMRes(36), 4)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("SM-Res never failed")
	}
	if v >= plat.Nominal() || v < plat.Nominal()-0.3 {
		t.Errorf("failure voltage %v out of range", v)
	}
}
