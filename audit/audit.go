// Package audit is the public API of the AUDIT reproduction: automated
// di/dt stressmark generation for multi-core processors, after
// Kim et al., "AUDIT: Stress Testing the Automatic Way" (MICRO 2012).
//
// The package re-exports the user-facing pieces of the internal
// implementation as one coherent surface:
//
//   - Platform: a full simulated test system — cycle-level multi-core
//     chip, power model, RLC power-delivery network, virtual scope and
//     failure model (the paper's Fig. 8 bench).
//   - Generate: the AUDIT framework itself — genetic search over
//     instruction schedules whose fitness is the measured voltage droop
//     (Fig. 5), with automatic resonance detection, hierarchical
//     sub-blocking (§3.C) and pluggable cost functions.
//   - Dithering planners (§3.B) that guarantee worst-case thread
//     alignment in bounded time, exact and approximate.
//   - The comparison workloads of the evaluation: SPEC/PARSEC-style
//     kernels and the manual stressmarks SM1, SM2 and SM-Res.
//
// Quick start:
//
//	plat := audit.BulldozerPlatform()
//	sm, err := audit.Generate(audit.Options{Platform: plat, Threads: 4})
//	...
//	m, err := audit.MeasureDroop(plat, sm.Program, 4)
package audit

import (
	"context"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/ga"
	"repro/internal/isa"
	"repro/internal/pdn"
	"repro/internal/testbed"
	"repro/internal/workloads"
)

// Re-exported types. These aliases are the supported API; the internal
// packages behind them may reorganise.
type (
	// Platform is a complete simulated test system.
	Platform = testbed.Platform
	// CompiledPlatform is a platform compiled for repeated runs: the
	// PDN system matrix is factored once, chip instances are pooled,
	// and regulator settling is cached per supply voltage. Runs are
	// bit-identical to Platform.Run, just cheaper after the first.
	CompiledPlatform = testbed.CompiledPlatform
	// RunConfig configures one measurement run.
	RunConfig = testbed.RunConfig
	// Measurement is what a run produced.
	Measurement = testbed.Measurement
	// ThreadSpec places a program on a core.
	ThreadSpec = testbed.ThreadSpec
	// DitherSpec applies periodic alignment padding to one core.
	DitherSpec = testbed.DitherSpec
	// Runner is anything that can execute a measurement run — a
	// Platform, a CompiledPlatform, or a FaultInjector wrapping either.
	Runner = testbed.Runner
	// BatchRunner is a Runner that can evaluate a whole generation of
	// run configs through the two-stage batch pipeline (shared trace
	// captures, multi-lane replay). CompiledPlatform implements it.
	BatchRunner = testbed.BatchRunner
	// TraceStats snapshots the trace-cache and batch-pipeline counters.
	TraceStats = testbed.TraceStats

	// FaultConfig describes a lab-fault model (rates and amplitudes).
	FaultConfig = faults.Config
	// FaultInjector wraps a Runner with deterministic injected faults.
	FaultInjector = faults.Injector
	// FaultStats counts what an injector did.
	FaultStats = faults.Stats

	// Options configures stressmark generation.
	Options = core.Options
	// Stressmark is AUDIT's output.
	Stressmark = core.Stressmark
	// Genome is a stressmark candidate under search.
	Genome = core.Genome
	// CostFunc scores a measurement for the GA.
	CostFunc = core.CostFunc
	// DitherPlan schedules alignment sweeps.
	DitherPlan = core.DitherPlan
	// ResonanceSweep detects the PDN resonance from software.
	ResonanceSweep = core.ResonanceSweep
	// SweepPoint is one probe of a resonance sweep.
	SweepPoint = core.SweepPoint
	// Mode selects resonance or excitation generation.
	Mode = core.Mode

	// GAConfig tunes the genetic search.
	GAConfig = ga.Config

	// Program is an assembled instruction sequence.
	Program = asm.Program
	// Workload is one comparison benchmark.
	Workload = workloads.Workload

	// PDNConfig is the lumped power-delivery-network description.
	PDNConfig = pdn.Config
)

// Generation modes.
const (
	Resonance  = core.Resonance
	Excitation = core.Excitation
)

// Compile prepares a platform for repeated measurement runs (the
// evaluation fast path). Use it when running many configurations of
// one platform — GA loops, voltage-at-failure searches, sweeps.
func Compile(p Platform) (*CompiledPlatform, error) { return p.Compile() }

// BulldozerPlatform returns the paper's primary test system: four
// two-core modules with shared front ends and FPUs at 3.6 GHz.
func BulldozerPlatform() Platform { return testbed.Bulldozer() }

// PhenomPlatform returns the secondary 45 nm system of §5.C.
func PhenomPlatform() Platform { return testbed.Phenom() }

// Generate runs the AUDIT flow: optional resonance detection, then the
// genetic search with droop measured on the platform as fitness.
func Generate(opt Options) (*Stressmark, error) {
	return core.Generate(context.Background(), opt)
}

// GenerateContext is Generate with cancellation: ctx stops the search
// between evaluations. Combined with Options.CheckpointPath, an
// interrupted search resumes losslessly via Options.Resume.
func GenerateContext(ctx context.Context, opt Options) (*Stressmark, error) {
	return core.Generate(ctx, opt)
}

// MeasureDroop runs a program on n spatially-spread threads at nominal
// supply and returns the measurement.
func MeasureDroop(p Platform, prog *Program, threads int) (*Measurement, error) {
	specs, err := testbed.SpreadPlacement(p.Chip, prog, threads)
	if err != nil {
		return nil, err
	}
	return p.Run(RunConfig{
		Threads:      specs,
		MaxCycles:    28000,
		WarmupCycles: 3000,
	})
}

// FindFailureVoltage lowers the supply in 12.5 mV steps until the run
// fails, returning the highest failing voltage. The search runs on the
// compiled fast path (one matrix factorisation, pooled chips, cached
// regulator settles) and is bit-identical to probing with p.Run.
func FindFailureVoltage(p Platform, prog *Program, threads int) (float64, bool, error) {
	specs, err := testbed.SpreadPlacement(p.Chip, prog, threads)
	if err != nil {
		return 0, false, err
	}
	cp, err := p.Compile()
	if err != nil {
		return 0, false, err
	}
	rc := RunConfig{Threads: specs, MaxCycles: 25000, WarmupCycles: 3000}
	return cp.FindFailureVoltage(rc, p.Nominal()-0.3)
}

// ExactDither builds the exact §3.B alignment plan.
func ExactDither(cores []int, loopCycles, m int) (DitherPlan, error) {
	return core.ExactDither(cores, loopCycles, m)
}

// ApproxDither builds the approximate plan with alignment granularity δ.
func ApproxDither(cores []int, loopCycles, m, delta int) (DitherPlan, error) {
	return core.ApproxDither(cores, loopCycles, m, delta)
}

// Cost functions.
var (
	// MaxDroop maximises the worst measured droop (the default).
	MaxDroop CostFunc = core.MaxDroop
	// DroopPerWatt maximises droop per watt of average power.
	DroopPerWatt CostFunc = core.DroopPerWatt
)

// PathWeighted rewards droop plus activity on chosen units (volts per
// issue-per-cycle), for steering AUDIT toward known-sensitive paths.
func PathWeighted(weights map[isa.Unit]float64) CostFunc {
	return core.PathWeighted(weights)
}

// Benchmarks returns the SPEC- and PARSEC-style comparison kernels.
func Benchmarks() []Workload { return workloads.All() }

// Manual stressmarks, parameterised by the resonance loop length in
// cycles (36 for the Bulldozer platform).
var (
	SM1   = workloads.SM1
	SM2   = workloads.SM2
	SMRes = workloads.SMRes
)

// SuiteScenario names one usage configuration for GenerateSuite.
type SuiteScenario = core.SuiteScenario

// DefaultSuite returns the §5.A.6 scenario matrix for a platform:
// per-thread-count resonant marks, an excitation mark, and a
// throttled-configuration mark.
func DefaultSuite(p Platform) []SuiteScenario { return core.DefaultSuite(p) }

// GenerateSuite runs AUDIT once per scenario — "a suite of stressmarks
// that can effectively exercise all significant usage scenarios".
func GenerateSuite(p Platform, scenarios []SuiteScenario, base Options) ([]*Stressmark, error) {
	return core.GenerateSuite(context.Background(), p, scenarios, base)
}

// HeteroStressmark is the per-thread output of GenerateHetero.
type HeteroStressmark = core.HeteroStressmark

// GenerateHetero runs AUDIT with an independent genome per thread —
// sibling threads may specialise (e.g. FP-heavy next to integer-heavy)
// to negotiate shared resources, an extension of the paper's
// homogeneous generation.
func GenerateHetero(opt Options) (*HeteroStressmark, error) {
	return core.GenerateHetero(context.Background(), opt)
}

// GenerateHeteroContext is GenerateHetero with cancellation, as
// GenerateContext is for Generate.
func GenerateHeteroContext(ctx context.Context, opt Options) (*HeteroStressmark, error) {
	return core.GenerateHetero(ctx, opt)
}

// LoadStressmark reads a checkpoint written by (*Stressmark).Save; the
// returned genome population can seed a follow-up Generate via
// Options.SeedGenomes to resume the search.
var LoadStressmark = core.LoadStressmark

// SearchCheckpoint is a mid-search snapshot written each generation
// when Options.CheckpointPath is set; LoadSearchCheckpoint reads one
// back for Options.Resume. IsSearchCheckpoint sniffs whether a JSON
// blob is a search checkpoint (vs a saved stressmark).
type SearchCheckpoint = core.SearchCheckpoint

var (
	LoadSearchCheckpoint = core.LoadSearchCheckpoint
	IsSearchCheckpoint   = core.IsSearchCheckpoint
)

// WriteFileAtomic writes a file via temp-and-rename so crashes never
// leave a truncated artifact in place of a good one.
var WriteFileAtomic = core.WriteFileAtomic

// LabFaults returns the default lab-fault model (transient capture
// losses, waveform dropouts, scope noise, launch skew, VRM drift,
// throttling episodes) seeded for reproducibility. Wire it into a
// search via Options.WrapRunner with NewFaultInjector.
func LabFaults(seed int64) FaultConfig { return faults.Lab(seed) }

// NewFaultInjector wraps r with the configured fault model.
func NewFaultInjector(cfg FaultConfig, r Runner) (*FaultInjector, error) {
	return faults.New(cfg, r)
}

// ParseProgram assembles NASM-flavoured text.
func ParseProgram(src string) (*Program, error) { return asm.Parse(src) }

// EncodeProgram serialises a program to the binary object format;
// DecodeProgram reverses it.
var (
	EncodeProgram = asm.Encode
	DecodeProgram = asm.Decode
)
