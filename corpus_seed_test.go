package repro

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/ga"
	"repro/internal/testbed"
)

// seedCorpusDir is the committed regression corpus: stressmarks
// harvested from short searches over the repo's example scenarios
// (resonant 4T, FP-throttled, dithered, and a Phenom point), baselined
// bit-exactly. CI replays it on every change; see cmd/corpus and
// DESIGN.md §12.
const seedCorpusDir = "testdata/corpus"

// TestSeedCorpusReplay replays the committed corpus against the current
// tree. Every entry must pass: DRIFT here means a code change moved
// simulated measurements without any platform-description change to
// explain it — either fix the change or consciously re-baseline with
// `go run ./cmd/corpus redux -db testdata/corpus` and commit the diff.
//
// Regenerate the corpus from scratch (new searches, new baselines) with:
//
//	AUDIT_GOLDEN_REGEN=1 go test -run TestSeedCorpusReplay -v .
func TestSeedCorpusReplay(t *testing.T) {
	if os.Getenv("AUDIT_GOLDEN_REGEN") != "" {
		regenSeedCorpus(t)
		return
	}
	db, err := corpus.Open(seedCorpusDir)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := db.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 4 {
		t.Fatalf("seed corpus has %d entries, want at least 4 (regenerate with AUDIT_GOLDEN_REGEN=1)", len(entries))
	}
	byPlatform := map[string][]*corpus.Entry{}
	for _, e := range entries {
		byPlatform[e.Platform] = append(byPlatform[e.Platform], e)
	}
	for platform, group := range byPlatform {
		p, err := corpus.ResolvePlatform(platform)
		if err != nil {
			t.Fatal(err)
		}
		cp, err := p.Compile()
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range corpus.Replay(cp, group, corpus.ReplayOptions{}) {
			if r.Verdict != corpus.Pass {
				t.Errorf("%s (%s): %s: %s", r.Entry.Name, platform, r.Verdict, r.Detail)
			}
		}
	}
}

// regenSeedCorpus rebuilds testdata/corpus from scratch: four short
// searches covering the repo's example scenarios, harvested with
// bit-exact baselines. Deliberately deterministic (fixed seeds) so two
// regens on the same tree produce identical files.
func regenSeedCorpus(t *testing.T) {
	old, err := filepath.Glob(filepath.Join(seedCorpusDir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range old {
		if err := os.Remove(f); err != nil {
			t.Fatal(err)
		}
	}
	db, err := corpus.Open(seedCorpusDir)
	if err != nil {
		t.Fatal(err)
	}

	smallGA := ga.Config{
		PopSize: 10, Elites: 2, TournamentK: 3, MutationProb: 0.6,
		MaxGenerations: 8, StagnantLimit: 6, Seed: 77,
	}
	ctx := context.Background()

	add := func(e *corpus.Entry, err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		path, err := db.Add(e)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Printf("seeded %s (droop %.3f mV) -> %s\n", e.Name, e.Expected.DroopV*1e3, path)
	}

	bull := testbed.Bulldozer()
	bcp, err := bull.Compile()
	if err != nil {
		t.Fatal(err)
	}

	// 1. The flagship: resonant 4T on Bulldozer at the PDN's resonant
	// loop length, with the only failure-ladder baseline (ladders cost a
	// descent of measurements per replay, so one per corpus is plenty).
	resonant, err := core.Generate(ctx, core.Options{
		Platform: bull, Threads: 4, Mode: core.Resonance,
		LoopCycles: 36, GA: smallGA, Seed: 77, Name: "seed-resonant-4t",
	})
	if err != nil {
		t.Fatal(err)
	}
	add(corpus.Harvest(bcp, "bulldozer", resonant, corpus.HarvestConfig{
		FailFloor: bull.PDN.VNom * 0.80,
	}))

	// 2. FP-throttled (the paper's A-Res-Th scenario).
	throttled, err := core.Generate(ctx, core.Options{
		Platform: bull, Threads: 4, Mode: core.Resonance, FPThrottle: 1,
		LoopCycles: 36, GA: smallGA, Seed: 77, Name: "seed-throttled-4t",
	})
	if err != nil {
		t.Fatal(err)
	}
	add(corpus.Harvest(bcp, "bulldozer", throttled, corpus.HarvestConfig{}))

	// 3. The resonant winner replayed under a multicore dither schedule
	// (same genome, different measurement config — a distinct identity).
	plan, err := core.ExactDither([]int{0, 1, 2, 3}, resonant.LoopCycles, 4)
	if err != nil {
		t.Fatal(err)
	}
	add(corpus.Harvest(bcp, "bulldozer", resonant, corpus.HarvestConfig{
		Name:   "seed-dithered-4t",
		Dither: plan.Specs,
	}))

	// 4. A Phenom point, so the corpus covers both platforms.
	phen := testbed.Phenom()
	pcp, err := phen.Compile()
	if err != nil {
		t.Fatal(err)
	}
	phenom, err := core.Generate(ctx, core.Options{
		Platform: phen, Threads: 4, Mode: core.Resonance,
		LoopCycles: 40, GA: smallGA, Seed: 77, Name: "seed-phenom-4t",
	})
	if err != nil {
		t.Fatal(err)
	}
	add(corpus.Harvest(pcp, "phenom", phenom, corpus.HarvestConfig{}))
}
